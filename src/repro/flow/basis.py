"""Spanning-tree bases of transportation problems.

Both dense simplex backends — the MODI solver
(:mod:`repro.flow.transport_simplex`) and the sparse network simplex
(:mod:`repro.flow.network_simplex`) — maintain a *basis*: a set of
``n + m - 1`` cells whose bipartite graph (suppliers 0..n-1, consumers
n..n+m-1) forms a spanning tree. This module holds the representation and
the validation/repair helpers they share:

* :class:`TransportBasis` — an immutable cell set, cheap to cache
  (``nbytes`` is exact, so :class:`repro.snd.cache.CacheManager` can
  budget it) and cheap to remap: entries may be *local indices* of one
  instance or *stable labels* (global node ids), which is how a basis
  survives the trip between two different reduced SND instances.
* :func:`repair_basis` — complete a degenerate cell set into a spanning
  tree (union-find over the bipartite nodes), shared by the
  northwest-corner initialiser and the warm-start import path.
* :func:`validate_basis` — spanning-tree check used by property tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TransportBasis", "repair_basis", "validate_basis"]


@dataclass(frozen=True)
class TransportBasis:
    """An immutable set of basis cells ``(rows[k], cols[k])``.

    The coordinate space is caller-defined: solvers exchange *local
    indices* into one instance's supplier/consumer axes, while the SND
    basis cache stores *labels* (global graph-node ids, with bank bins
    encoded as negative labels) so a basis can be re-anchored onto the
    reduced instance of a *different* — but temporally nearby — state
    pair.
    """

    rows: np.ndarray
    cols: np.ndarray

    def __post_init__(self) -> None:
        rows = np.ascontiguousarray(np.asarray(self.rows, dtype=np.int64))
        cols = np.ascontiguousarray(np.asarray(self.cols, dtype=np.int64))
        if rows.shape != cols.shape or rows.ndim != 1:
            raise ValueError(
                f"basis rows/cols must be equal-length vectors, got "
                f"{rows.shape} and {cols.shape}"
            )
        rows.setflags(write=False)
        cols.setflags(write=False)
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)

    def __len__(self) -> int:
        return int(self.rows.shape[0])

    @property
    def nbytes(self) -> int:
        """Exact retained payload bytes (cache accounting)."""
        return int(self.rows.nbytes + self.cols.nbytes)

    def transpose(self) -> "TransportBasis":
        """The basis of the role-swapped instance (suppliers <-> consumers).

        A term ``EMD*(q, p)`` reduces to the transpose of the instance of
        ``EMD*(p, q)`` — same node sets with roles swapped — so the stored
        tree transposed is a structurally valid warm start for the
        reversed term.
        """
        return TransportBasis(rows=self.cols, cols=self.rows)

    def cells(self) -> list[tuple[int, int]]:
        """The cells as a plain list of ``(row, col)`` tuples."""
        return list(zip(self.rows.tolist(), self.cols.tolist()))


def repair_basis(basis: set[tuple[int, int]], n: int, m: int) -> None:
    """Complete *basis* in place into a spanning tree of ``n + m - 1`` cells.

    Union-find over supplier nodes ``0..n-1`` and consumer nodes
    ``n..n+m-1``; cells are added in row-major order until the bipartite
    graph is connected. Existing cells that close cycles are left alone —
    callers de-duplicate those before flow assignment.
    """
    parent = list(range(n + m))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> bool:
        ra, rb = find(a), find(b)
        if ra == rb:
            return False
        parent[ra] = rb
        return True

    for (i, j) in basis:
        union(i, n + j)
    for i in range(n):
        for j in range(m):
            if len(basis) >= n + m - 1:
                return
            if (i, j) not in basis and union(i, n + j):
                basis.add((i, j))


def validate_basis(cells, n: int, m: int) -> bool:
    """``True`` iff *cells* form a spanning tree of the ``n x m`` instance.

    Exactly ``n + m - 1`` distinct in-range cells, connected and acyclic
    over the bipartite node set — the invariant every simplex pivot
    preserves and every exported basis must satisfy.
    """
    cells = list(cells)
    if len(cells) != n + m - 1:
        return False
    if len(set(cells)) != len(cells):
        return False
    parent = list(range(n + m))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for (i, j) in cells:
        if not (0 <= i < n and 0 <= j < m):
            return False
        ri, rj = find(i), find(n + j)
        if ri == rj:
            return False  # cycle
        parent[ri] = rj
    roots = {find(x) for x in range(n + m)}
    return len(roots) == 1
