"""repro — Social Network Distance (SND) for polar opinion dynamics.

A full reproduction of Amelkin, Singh & Bogdanov, *A Distance Measure for
the Analysis of Polar Opinion Dynamics in Social Networks* (ICDE 2017):
the EMD* histogram distance, SND itself with three opinion models, the
linear-time reduced computation, and the paper's anomaly-detection /
opinion-prediction applications.

Quickstart::

    from repro import SND, NetworkState
    from repro.graph import powerlaw_configuration_graph

    graph = powerlaw_configuration_graph(1000, -2.3, seed=0)
    snd = SND(graph, seed=0)
    a = NetworkState.from_active_sets(1000, positive=[1, 2], negative=[3])
    b = NetworkState.from_active_sets(1000, positive=[1, 5], negative=[3])
    print(snd.distance(a, b))
"""

from repro.analysis import DistancePredictor, detect_anomalies, roc_auc, tpr_at_fpr
from repro.emd import emd, emd_alpha, emd_hat, emd_star
from repro.graph import DiGraph
from repro.opinions import (
    IndependentCascadeModel,
    LinearThresholdModel,
    ModelAgnostic,
    NetworkState,
    StateSeries,
)
from repro.snd import SND, Corpus, SNDEngine, snd_direct

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DiGraph",
    "NetworkState",
    "StateSeries",
    "ModelAgnostic",
    "IndependentCascadeModel",
    "LinearThresholdModel",
    "SND",
    "SNDEngine",
    "Corpus",
    "snd_direct",
    "emd",
    "emd_hat",
    "emd_alpha",
    "emd_star",
    "DistancePredictor",
    "detect_anomalies",
    "roc_auc",
    "tpr_at_fpr",
]
