"""Validation helpers used across the library.

These helpers normalise inputs to numpy arrays and raise
:class:`~repro.exceptions.ValidationError` with a message that names the
offending argument, so that errors surfacing from deep inside a solver still
point at the user-facing parameter.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "check_vector",
    "check_square",
    "check_nonnegative",
    "check_finite",
    "check_probability",
    "check_positive_int",
    "check_in_range",
    "check_same_length",
]


def check_vector(
    values: Iterable[float],
    name: str = "values",
    *,
    dtype: type = np.float64,
    length: int | None = None,
) -> np.ndarray:
    """Coerce *values* to a 1-D numpy array, optionally of fixed *length*."""
    arr = np.asarray(values, dtype=dtype)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if length is not None and arr.shape[0] != length:
        raise ValidationError(f"{name} must have length {length}, got {arr.shape[0]}")
    return arr


def check_square(matrix: Iterable, name: str = "matrix", *, size: int | None = None) -> np.ndarray:
    """Coerce *matrix* to a square 2-D float array, optionally of fixed *size*."""
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValidationError(f"{name} must be a square matrix, got shape {arr.shape}")
    if size is not None and arr.shape[0] != size:
        raise ValidationError(f"{name} must be {size}x{size}, got {arr.shape[0]}x{arr.shape[1]}")
    return arr


def check_nonnegative(arr: np.ndarray, name: str = "array") -> np.ndarray:
    """Raise unless every entry of *arr* is >= 0."""
    if arr.size and float(np.min(arr)) < 0:
        raise ValidationError(f"{name} must be non-negative; min entry is {np.min(arr)}")
    return arr


def check_finite(arr: np.ndarray, name: str = "array") -> np.ndarray:
    """Raise unless every entry of *arr* is finite."""
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} must contain only finite values")
    return arr


def check_probability(value: float, name: str = "probability") -> float:
    """Raise unless *value* lies in [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_positive_int(value: int, name: str = "value") -> int:
    """Raise unless *value* is a positive integer."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return int(value)


def check_in_range(
    value: float,
    lo: float,
    hi: float,
    name: str = "value",
    *,
    inclusive: bool = True,
) -> float:
    """Raise unless ``lo <= value <= hi`` (or strict, if ``inclusive=False``)."""
    value = float(value)
    if inclusive:
        ok = lo <= value <= hi
    else:
        ok = lo < value < hi
    if not ok:
        raise ValidationError(f"{name} must lie in [{lo}, {hi}], got {value}")
    return value


def check_same_length(name_a: str, a: Sequence, name_b: str, b: Sequence) -> None:
    """Raise unless two sequences have equal length."""
    if len(a) != len(b):
        raise ValidationError(
            f"{name_a} and {name_b} must have equal length, got {len(a)} and {len(b)}"
        )
