"""Lightweight timing helpers for the scalability experiments (Figs. 11-12)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "timed"]


@dataclass
class Stopwatch:
    """Accumulates named wall-clock timings.

    Example
    -------
    >>> sw = Stopwatch()
    >>> with sw.measure("dijkstra"):
    ...     pass
    >>> "dijkstra" in sw.totals
    True
    """

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, label: str):
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self.totals[label] = self.totals.get(label, 0.0) + elapsed
            self.counts[label] = self.counts.get(label, 0) + 1

    def mean(self, label: str) -> float:
        """Mean elapsed seconds across all measurements of *label*."""
        if label not in self.totals:
            raise KeyError(f"no measurements recorded for {label!r}")
        return self.totals[label] / self.counts[label]

    def report(self) -> str:
        """Human-readable multi-line summary, longest total first."""
        lines = []
        for label in sorted(self.totals, key=self.totals.get, reverse=True):
            lines.append(
                f"{label:30s} total={self.totals[label]:10.4f}s "
                f"n={self.counts[label]:5d} mean={self.mean(label):10.6f}s"
            )
        return "\n".join(lines)


@contextmanager
def timed():
    """Context manager yielding a zero-arg callable that returns elapsed seconds.

    >>> with timed() as elapsed:
    ...     pass
    >>> elapsed() >= 0.0
    True
    """
    start = time.perf_counter()
    end: list[float | None] = [None]

    def elapsed() -> float:
        return (end[0] or time.perf_counter()) - start

    try:
        yield elapsed
    finally:
        end[0] = time.perf_counter()
