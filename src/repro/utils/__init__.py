"""Shared utilities: validation helpers, RNG handling, timing."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive_int,
    check_probability,
    check_square,
    check_vector,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "Stopwatch",
    "timed",
    "check_finite",
    "check_in_range",
    "check_nonnegative",
    "check_positive_int",
    "check_probability",
    "check_square",
    "check_vector",
]
