"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None`` (fresh entropy), an ``int``, or an already-constructed
:class:`numpy.random.Generator`. :func:`as_rng` normalises all three, so
experiments are reproducible end-to-end from a single integer.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "spawn_rngs"]

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Passing an existing generator returns it unchanged, so nested calls share
    a stream instead of resetting it.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, count: int) -> list[np.random.Generator]:
    """Derive *count* statistically independent generators from one seed.

    Used by experiment harnesses that run repeated trials: each trial gets its
    own stream, so adding or removing trials never perturbs the others.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Spawn via the generator's bit generator seed sequence when possible;
        # otherwise fall back to drawing child seeds from the stream.
        seed_seq = getattr(seed.bit_generator, "seed_seq", None)
        if seed_seq is not None:
            return [np.random.default_rng(s) for s in seed_seq.spawn(count)]
        return [np.random.default_rng(int(seed.integers(2**63))) for _ in range(count)]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(count)]
