"""Baseline distance measures the paper compares SND against (§6.1, §7).

All measures share the signature ``f(state_p, state_q, context) -> float``
via :class:`DistanceRegistry`; vector-space measures ignore the context,
graph-aware ones (quad-form, walk-dist) read the graph/Laplacian from it.
"""

from repro.distances.quad_form import quad_form_distance
from repro.distances.registry import DistanceContext, DistanceRegistry, default_registry
from repro.distances.vector import (
    canberra_distance,
    chebyshev_distance,
    cosine_distance,
    hamming_distance,
    kl_divergence,
    l1_distance,
    l2_distance,
    lp_distance,
)
from repro.distances.walk_dist import contention_vector, walk_distance

__all__ = [
    "hamming_distance",
    "l1_distance",
    "l2_distance",
    "lp_distance",
    "cosine_distance",
    "canberra_distance",
    "chebyshev_distance",
    "kl_divergence",
    "quad_form_distance",
    "walk_distance",
    "contention_vector",
    "DistanceContext",
    "DistanceRegistry",
    "default_registry",
]
