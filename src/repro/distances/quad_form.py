"""Quadratic-Form distance over the network Laplacian (§6.1 baseline).

``quad-form(P, Q, L) = sqrt((P - Q) L (P - Q)^T)`` — the opinion difference
vector weighted by the graph structure. This is the only §6.1 baseline that
sees the network at all, but (as §7 argues) it combines differences in a
limited, hard-to-interpret way.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.laplacian import laplacian_matrix, quadratic_form

__all__ = ["quad_form_distance"]


def quad_form_distance(p, q, laplacian=None, *, graph: DiGraph | None = None) -> float:
    """Quadratic-form distance; pass a precomputed Laplacian for speed, or a
    graph to build it on the fly."""
    if laplacian is None:
        if graph is None:
            raise ValueError("quad_form_distance needs a laplacian or a graph")
        laplacian = laplacian_matrix(graph)
    p_arr = np.asarray(getattr(p, "values", p), dtype=np.float64)
    q_arr = np.asarray(getattr(q, "values", q), dtype=np.float64)
    return float(np.sqrt(quadratic_form(laplacian, p_arr - q_arr)))
