"""walk-dist: the contention-based baseline of §6.1.

``cnt(P)_i`` measures how far user i's opinion deviates from the opinion of
her *average active in-neighbor*; ``walk-dist(P, Q) = ||cnt(P) - cnt(Q)||_1 / n``
summarises how differently the network's users sit relative to their
neighborhoods in the two states. Users without active in-neighbors have
contention 0 (nothing to deviate from).
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph

__all__ = ["contention_vector", "walk_distance"]


def contention_vector(graph: DiGraph, state) -> np.ndarray:
    """``cnt(P)_i = |P_i - mean of active in-neighbor opinions|``."""
    values = np.asarray(getattr(state, "values", state), dtype=np.float64)
    sources = np.repeat(
        np.arange(graph.num_nodes, dtype=np.int64), np.diff(graph.indptr)
    )
    targets = graph.indices
    src_vals = values[sources]
    active = src_vals != 0

    opinion_sum = np.zeros(graph.num_nodes)
    active_count = np.zeros(graph.num_nodes)
    np.add.at(opinion_sum, targets[active], src_vals[active])
    np.add.at(active_count, targets[active], 1.0)

    mean_neighbor = np.divide(
        opinion_sum,
        active_count,
        out=np.zeros_like(opinion_sum),
        where=active_count > 0,
    )
    contention = np.abs(values - mean_neighbor)
    contention[active_count == 0] = 0.0
    return contention


def walk_distance(graph: DiGraph, p, q) -> float:
    """``||cnt(P) - cnt(Q)||_1 / n``."""
    cp = contention_vector(graph, p)
    cq = contention_vector(graph, q)
    n = max(graph.num_nodes, 1)
    return float(np.abs(cp - cq).sum() / n)
