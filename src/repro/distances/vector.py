"""Coordinate-wise vector distances over network states (§7 baselines).

These treat a state purely as a vector in R^n — they cannot see the network
structure, which is exactly the deficiency §6 demonstrates. Each accepts
:class:`~repro.opinions.state.NetworkState` or a plain array.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "hamming_distance",
    "l1_distance",
    "l2_distance",
    "lp_distance",
    "cosine_distance",
    "canberra_distance",
    "chebyshev_distance",
    "kl_divergence",
]


def _as_vectors(p, q) -> tuple[np.ndarray, np.ndarray]:
    p_arr = np.asarray(getattr(p, "values", p), dtype=np.float64)
    q_arr = np.asarray(getattr(q, "values", q), dtype=np.float64)
    if p_arr.shape != q_arr.shape or p_arr.ndim != 1:
        raise ValidationError(
            f"states must be 1-D with equal length, got {p_arr.shape} and {q_arr.shape}"
        )
    return p_arr, q_arr


def hamming_distance(p, q) -> float:
    """Number of users whose opinion differs (the ``hamming`` baseline)."""
    p_arr, q_arr = _as_vectors(p, q)
    return float(np.count_nonzero(p_arr != q_arr))


def l1_distance(p, q) -> float:
    """``||P - Q||_1`` (the §6.4 coordinate-wise representative)."""
    p_arr, q_arr = _as_vectors(p, q)
    return float(np.abs(p_arr - q_arr).sum())


def l2_distance(p, q) -> float:
    """Euclidean distance ``||P - Q||_2``."""
    p_arr, q_arr = _as_vectors(p, q)
    return float(np.sqrt(((p_arr - q_arr) ** 2).sum()))


def lp_distance(p, q, *, order: float = 2.0) -> float:
    """Minkowski distance of the given *order* (>= 1)."""
    if order < 1:
        raise ValidationError(f"order must be >= 1, got {order}")
    p_arr, q_arr = _as_vectors(p, q)
    return float(np.abs(p_arr - q_arr).__pow__(order).sum() ** (1.0 / order))


def cosine_distance(p, q) -> float:
    """``1 - cos(P, Q)``; zero vectors are at distance 1 from anything
    non-zero and 0 from each other (the continuous-limit convention)."""
    p_arr, q_arr = _as_vectors(p, q)
    np_norm = float(np.linalg.norm(p_arr))
    nq_norm = float(np.linalg.norm(q_arr))
    if np_norm == 0.0 and nq_norm == 0.0:
        return 0.0
    if np_norm == 0.0 or nq_norm == 0.0:
        return 1.0
    return float(1.0 - (p_arr @ q_arr) / (np_norm * nq_norm))


def canberra_distance(p, q) -> float:
    """Canberra distance; terms with ``|p| + |q| = 0`` contribute 0."""
    p_arr, q_arr = _as_vectors(p, q)
    denom = np.abs(p_arr) + np.abs(q_arr)
    mask = denom > 0
    return float((np.abs(p_arr - q_arr)[mask] / denom[mask]).sum())


def chebyshev_distance(p, q) -> float:
    """``max_i |P_i - Q_i|``."""
    p_arr, q_arr = _as_vectors(p, q)
    return float(np.abs(p_arr - q_arr).max()) if p_arr.size else 0.0


def kl_divergence(p, q, *, epsilon: float = 1e-12) -> float:
    """Symmetrised KL divergence between the states viewed as opinion-count
    distributions over {+, 0, -} mass (ε-smoothed).

    Raw ±1 vectors are not distributions, so both are shifted to {0, 1, 2}
    and normalised — the standard trick for applying KL to polar data.
    """
    p_arr, q_arr = _as_vectors(p, q)
    p_shift = p_arr + 1.0 + epsilon
    q_shift = q_arr + 1.0 + epsilon
    p_dist = p_shift / p_shift.sum()
    q_dist = q_shift / q_shift.sum()
    forward = float((p_dist * np.log(p_dist / q_dist)).sum())
    backward = float((q_dist * np.log(q_dist / p_dist)).sum())
    return 0.5 * (forward + backward)
