"""A uniform interface over all distance measures.

The experiment harnesses (§6) sweep the same state series through SND and
every baseline; :class:`DistanceRegistry` gives them one calling convention
with per-measure precomputation (Laplacian for quad-form, SND instance,
...) held in a :class:`DistanceContext`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.distances.quad_form import quad_form_distance
from repro.distances.vector import hamming_distance, l1_distance
from repro.distances.walk_dist import walk_distance
from repro.exceptions import ValidationError
from repro.graph.digraph import DiGraph
from repro.opinions.state import NetworkState, StateSeries

__all__ = ["DistanceContext", "DistanceRegistry", "default_registry"]


@dataclass
class DistanceContext:
    """Shared precomputed assets for distance evaluation over one graph."""

    graph: DiGraph
    laplacian: object = None
    snd: object = None
    extras: dict = field(default_factory=dict)

    def ensure_laplacian(self):
        if self.laplacian is None:
            from repro.graph.laplacian import laplacian_matrix

            self.laplacian = laplacian_matrix(self.graph)
        return self.laplacian

    def ensure_snd(self, **kwargs):
        if self.snd is None:
            from repro.snd import SND

            self.snd = SND(self.graph, **kwargs)
        return self.snd

    def cache_stats(self) -> dict | None:
        """Counters of the SND cache hierarchy (``None`` before any SND
        use) — the ``--cache-stats`` CLI surface; see
        :meth:`repro.snd.cache.CacheManager.stats`."""
        if self.snd is None:
            return None
        return self.snd.caches.stats()


MeasureFn = Callable[[NetworkState, NetworkState, DistanceContext], float]


#: Batched series evaluator:
#: ``(series, context, jobs, window) -> (T-1,) array``.
SeriesFn = Callable[
    [StateSeries, DistanceContext, "int | None", "int | None"], np.ndarray
]
#: Batched all-pairs evaluator: ``(states, context, jobs) -> (N, N) array``.
PairwiseFn = Callable[[Sequence, DistanceContext, "int | None"], np.ndarray]


class DistanceRegistry:
    """Named distance measures with a shared ``(p, q, context)`` signature.

    Measures may additionally register batched evaluators (*series_fn*,
    *pairwise_fn*) that exploit measure-specific structure — SND routes
    through :mod:`repro.snd.batch` for ground-cost caching and a ``jobs=``
    fan-out. Measures without batched evaluators fall back to generic
    loops (symmetric measures still get upper-triangle-only pairwise
    evaluation), so every registered measure supports :meth:`series` and
    :meth:`pairwise` uniformly.
    """

    def __init__(self) -> None:
        self._measures: dict[str, MeasureFn] = {}
        self._series_fns: dict[str, SeriesFn] = {}
        self._pairwise_fns: dict[str, PairwiseFn] = {}

    def register(
        self,
        name: str,
        fn: MeasureFn,
        *,
        series_fn: SeriesFn | None = None,
        pairwise_fn: PairwiseFn | None = None,
    ) -> None:
        if name in self._measures:
            raise ValidationError(f"measure {name!r} already registered")
        self._measures[name] = fn
        if series_fn is not None:
            self._series_fns[name] = series_fn
        if pairwise_fn is not None:
            self._pairwise_fns[name] = pairwise_fn

    def names(self) -> list[str]:
        return sorted(self._measures)

    def get(self, name: str) -> MeasureFn:
        try:
            return self._measures[name]
        except KeyError:
            raise ValidationError(
                f"unknown measure {name!r}; available: {self.names()}"
            ) from None

    def compute(
        self, name: str, p: NetworkState, q: NetworkState, context: DistanceContext
    ) -> float:
        return self.get(name)(p, q, context)

    def series(
        self,
        name: str,
        series: StateSeries,
        context: DistanceContext,
        *,
        jobs: int | None = None,
        window: int | None = None,
    ) -> np.ndarray:
        """Adjacent-state distances ``d_t = f(G_{t-1}, G_t)``.

        Measures with a registered batched evaluator (SND) honour *jobs*
        and *window* (incremental sliding-window evaluation — identical
        values, previously solved transitions reused) and cache shared
        work; others run the generic per-pair loop, for which *window* is
        a no-op (the values do not depend on it).
        """
        fn = self.get(name)  # validates the name for both paths
        batched = self._series_fns.get(name)
        if batched is not None:
            return np.asarray(batched(series, context, jobs, window), dtype=np.float64)
        return np.array(
            [fn(a, b, context) for a, b in series.transitions()], dtype=np.float64
        )

    def pairwise(
        self,
        name: str,
        states,
        context: DistanceContext,
        *,
        jobs: int | None = None,
    ) -> np.ndarray:
        """Symmetric all-pairs distance matrix over *states*.

        The generic fallback evaluates the upper triangle only and mirrors
        it (every registered measure is symmetric); SND's batched evaluator
        additionally caches ground costs and fans out across *jobs*.
        """
        fn = self.get(name)
        batched = self._pairwise_fns.get(name)
        if batched is not None:
            return np.asarray(batched(states, context, jobs), dtype=np.float64)
        from repro.analysis.metric_space import state_distance_matrix

        return state_distance_matrix(states, lambda p, q: fn(p, q, context))


def default_registry() -> DistanceRegistry:
    """Registry with the paper's §6.1 line-up — snd, hamming, walk-dist,
    quad-form (plus l1 used in §6.4) — and the scalar polarization
    baselines of the bake-off (esp, disagreement, bimodality: the change
    ``|P(G_2) - P(G_1)|`` in each literature measure, see
    :mod:`repro.analysis.baselines`)."""
    from repro.analysis.baselines import (
        bimodality_coefficient,
        disagreement_index,
        polarization_index,
    )

    registry = DistanceRegistry()
    registry.register(
        "snd",
        lambda p, q, ctx: ctx.ensure_snd().distance(p, q),
        series_fn=lambda series, ctx, jobs, window=None: ctx.ensure_snd()
        .evaluate_series(series, jobs=jobs, window=window),
        pairwise_fn=lambda states, ctx, jobs: ctx.ensure_snd().pairwise_matrix(
            states, jobs=jobs
        ),
    )
    registry.register("hamming", lambda p, q, ctx: hamming_distance(p, q))
    registry.register("l1", lambda p, q, ctx: l1_distance(p, q))
    registry.register(
        "quad-form",
        lambda p, q, ctx: quad_form_distance(p, q, ctx.ensure_laplacian()),
    )
    registry.register(
        "walk-dist", lambda p, q, ctx: walk_distance(ctx.graph, p, q)
    )
    registry.register(
        "esp",
        lambda p, q, ctx: abs(polarization_index(q) - polarization_index(p)),
    )
    registry.register(
        "disagreement",
        lambda p, q, ctx: abs(
            disagreement_index(q, ctx.ensure_laplacian())
            - disagreement_index(p, ctx.ensure_laplacian())
        ),
    )
    registry.register(
        "bimodality",
        lambda p, q, ctx: abs(bimodality_coefficient(q) - bimodality_coefficient(p)),
    )
    return registry
