"""A uniform interface over all distance measures.

The experiment harnesses (§6) sweep the same state series through SND and
every baseline; :class:`DistanceRegistry` gives them one calling convention
with per-measure precomputation (Laplacian for quad-form, SND instance,
...) held in a :class:`DistanceContext`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.distances.quad_form import quad_form_distance
from repro.distances.vector import hamming_distance, l1_distance
from repro.distances.walk_dist import walk_distance
from repro.exceptions import ValidationError
from repro.graph.digraph import DiGraph
from repro.opinions.state import NetworkState, StateSeries

__all__ = ["DistanceContext", "DistanceRegistry", "default_registry"]


@dataclass
class DistanceContext:
    """Shared precomputed assets for distance evaluation over one graph."""

    graph: DiGraph
    laplacian: object = None
    snd: object = None
    extras: dict = field(default_factory=dict)

    def ensure_laplacian(self):
        if self.laplacian is None:
            from repro.graph.laplacian import laplacian_matrix

            self.laplacian = laplacian_matrix(self.graph)
        return self.laplacian

    def ensure_snd(self, **kwargs):
        if self.snd is None:
            from repro.snd import SND

            self.snd = SND(self.graph, **kwargs)
        return self.snd


MeasureFn = Callable[[NetworkState, NetworkState, DistanceContext], float]


class DistanceRegistry:
    """Named distance measures with a shared ``(p, q, context)`` signature."""

    def __init__(self) -> None:
        self._measures: dict[str, MeasureFn] = {}

    def register(self, name: str, fn: MeasureFn) -> None:
        if name in self._measures:
            raise ValidationError(f"measure {name!r} already registered")
        self._measures[name] = fn

    def names(self) -> list[str]:
        return sorted(self._measures)

    def get(self, name: str) -> MeasureFn:
        try:
            return self._measures[name]
        except KeyError:
            raise ValidationError(
                f"unknown measure {name!r}; available: {self.names()}"
            ) from None

    def compute(
        self, name: str, p: NetworkState, q: NetworkState, context: DistanceContext
    ) -> float:
        return self.get(name)(p, q, context)

    def series(
        self, name: str, series: StateSeries, context: DistanceContext
    ) -> np.ndarray:
        """Adjacent-state distances ``d_t = f(G_{t-1}, G_t)``."""
        fn = self.get(name)
        return np.array(
            [fn(a, b, context) for a, b in series.transitions()], dtype=np.float64
        )


def default_registry() -> DistanceRegistry:
    """Registry with the paper's §6.1 line-up: snd, hamming, walk-dist,
    quad-form (plus l1 used in §6.4)."""
    registry = DistanceRegistry()
    registry.register("snd", lambda p, q, ctx: ctx.ensure_snd().distance(p, q))
    registry.register("hamming", lambda p, q, ctx: hamming_distance(p, q))
    registry.register("l1", lambda p, q, ctx: l1_distance(p, q))
    registry.register(
        "quad-form",
        lambda p, q, ctx: quad_form_distance(p, q, ctx.ensure_laplacian()),
    )
    registry.register(
        "walk-dist", lambda p, q, ctx: walk_distance(ctx.graph, p, q)
    )
    return registry
