"""The unified SND cache hierarchy.

Every SND entry point — single-pair :meth:`repro.snd.snd.SND.evaluate`,
the batch wrappers in :mod:`repro.snd.batch`, the persistent
:class:`repro.snd.engine.SNDEngine`, and the distance registry — reuses
work at three levels:

1. **Ground costs** (:class:`GroundCostCache`): Eq. 2 edge-cost arrays
   keyed by ``(state fingerprint, opinion)``. A series sweep builds
   ``2·(T-1) + 2`` arrays instead of ``4·(T-1)``; a pairwise matrix over
   ``N`` states builds ``2·N`` instead of ``2·N·(N-1)``.
2. **Shortest-path rows** (:class:`DijkstraRowCache`): per-source Dijkstra
   rows keyed by ``(cost key, direction, source)``. Rows are independent
   per source, so stitching cached and fresh rows is bit-identical to one
   batched run.
3. **Finished transitions** (:class:`TransitionCache`): whole SND values
   keyed by the ordered state-fingerprint pair. Sliding windows re-solve
   exactly one transition per shift; corpus extensions solve only the new
   pairs.
4. **Optimal bases** (:class:`BasisCache`): spanning-tree bases of solved
   EMD* terms, keyed by ``(supplier fingerprint, consumer fingerprint,
   opinion)`` in stable node-label space. A cached basis warm-starts the
   network-simplex solve of the *next*, nearly identical term (window
   shift, corpus append) — the value caches above skip repeated solves,
   the basis store accelerates the genuinely new ones.

:class:`CacheManager` bundles one instance of each under a single,
optional **shared memory budget** and one stats surface: when the total
retained payload exceeds the budget, entries are evicted
least-recently-used from whichever cache currently retains the most
bytes, so one oversized layer cannot starve the others (a basis entry is
two int64 vectors — far heavier than a float transition value — and its
``nbytes`` participate in the accounting).  The first three caches were
historically defined in :mod:`repro.snd.batch`; that module re-exports
them, so existing imports keep working.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict

import numpy as np

from repro.exceptions import ValidationError
from repro.opinions.state import NetworkState

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_ROW_CACHE_SIZE",
    "DEFAULT_TRANSITION_CACHE_SIZE",
    "DEFAULT_BASIS_CACHE_SIZE",
    "GroundCostCache",
    "DijkstraRowCache",
    "TransitionCache",
    "BasisCache",
    "CacheManager",
]

#: Default bound on cached cost arrays. A series sweep only ever has 4
#: entries live (two states x two polarities); pairwise callers size their
#: cache to ``2·N`` explicitly. 64 leaves room for sliding-window reuse
#: while bounding retained memory at ``64 · m`` floats.
DEFAULT_CACHE_SIZE = 64

#: Default bound on cached Dijkstra rows (one row = ``n`` floats; 256 rows
#: of a 2000-node graph retain ~4 MB).
DEFAULT_ROW_CACHE_SIZE = 256

#: Default bound on cached transition values. Entries are single floats
#: keyed by two fingerprints, so a large default is cheap and lets long
#: sliding-window sweeps reuse every previously solved transition.
DEFAULT_TRANSITION_CACHE_SIZE = 65536

#: Default bound on cached spanning-tree bases. A basis entry is two int64
#: label vectors of roughly ``n_sup + n_con`` entries — orders of magnitude
#: heavier than a transition float, so the default is deliberately small;
#: temporal locality only needs the recent past.
DEFAULT_BASIS_CACHE_SIZE = 512


def _value_nbytes(value) -> int:
    """Approximate retained payload bytes of one cache entry."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, float):
        return 8
    nbytes = getattr(value, "nbytes", None)  # e.g. TransportBasis payloads
    if isinstance(nbytes, (int, np.integer)):
        return int(nbytes)
    return int(sys.getsizeof(value))


class _LruCache:
    """Bounded thread-safe LRU shared by the three SND caches.

    ``hits`` / ``misses`` / ``evictions`` counters make reuse testable:
    ``misses`` equals the number of fresh computations performed through
    the cache. Retained payload bytes are tracked in :attr:`nbytes` so a
    :class:`CacheManager` can enforce a budget across caches. Pickling
    drops the entries and the lock (process-pool workers rebuild their own
    caches; shipping entries across the boundary defeats the point).
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValidationError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._manager: "CacheManager | None" = None
        self._nbytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _get(self, key):
        """Entry for *key* (counting a hit) or ``None`` (counting a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
            return entry

    def _put(self, key, value) -> None:
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._nbytes -= _value_nbytes(old)
            self._entries[key] = value
            self._nbytes += _value_nbytes(value)
            while len(self._entries) > self.maxsize:
                self._evict_oldest_locked()
        if self._manager is not None:
            self._manager._rebalance()

    def _evict_oldest_locked(self) -> int:
        _, value = self._entries.popitem(last=False)
        freed = _value_nbytes(value)
        self._nbytes -= freed
        self.evictions += 1
        return freed

    def evict_oldest(self) -> int:
        """Drop the least-recently-used entry; returns the bytes freed."""
        with self._lock:
            if not self._entries:
                return 0
            return self._evict_oldest_locked()

    @property
    def nbytes(self) -> int:
        """Approximate retained payload bytes."""
        return self._nbytes

    def grow(self, maxsize: int) -> None:
        """Raise :attr:`maxsize` to at least *maxsize* (never shrinks)."""
        self.maxsize = max(self.maxsize, int(maxsize))

    def stats(self) -> dict:
        """Counters snapshot: hits, misses, builds, evictions, size, bytes.

        Key names match the Prometheus metric names the serve tier
        exports (``snd_cache_*``); ``max_size`` replaced the historical
        ``maxsize`` key as part of that normalisation.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
            "max_size": self.maxsize,
            "nbytes": self._nbytes,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._nbytes = 0

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]  # locks cannot cross pickle; workers re-create
        state["_entries"] = OrderedDict()  # entries don't travel: workers
        state["_nbytes"] = 0  # rebuild their own; shipping arrays defeats the point
        state["_manager"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(size={len(self._entries)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class GroundCostCache(_LruCache):
    """Bounded LRU cache of Eq. 2 edge-cost arrays.

    Keys are ``(state fingerprint, opinion)`` where the fingerprint is the
    raw opinion-vector bytes — two states with equal opinions share an
    entry regardless of object identity. Values are the CSR-aligned cost
    arrays of :meth:`repro.snd.ground.GroundDistanceConfig.edge_costs`;
    they are treated as immutable once cached.

    The cache is thread-safe (one lock around lookups/inserts) so a thread
    fan-out can share a single instance; process workers each hold their
    own. ``misses`` equals the number of ground-cost builds performed.
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        super().__init__(maxsize)

    @staticmethod
    def fingerprint(state: NetworkState) -> bytes:
        """Content key for *state* (equal opinions => equal fingerprint)."""
        return state.values.tobytes()

    def edge_costs(self, ground, graph, state: NetworkState, opinion: int) -> np.ndarray:
        """Cached ``ground.edge_costs(graph, state, opinion)``."""
        key = (self.fingerprint(state), int(opinion))
        cached = self._get(key)
        if cached is not None:
            return cached
        costs = ground.edge_costs(graph, state, opinion)
        self._put(key, costs)
        return costs

    @property
    def builds(self) -> int:
        """Number of ground-cost arrays actually built (== misses)."""
        return self.misses


class DijkstraRowCache(_LruCache):
    """Bounded LRU cache of per-source shortest-path rows.

    A row is ``dist(source -> ·)`` (or ``dist(· -> source)`` when
    *reverse*) under one supplier-side cost array; the key is
    ``(cost_key, reverse, source)`` where ``cost_key`` is the ground-cost
    cache key ``(state fingerprint, opinion)``. Rows are independent per
    source, so a matrix stitched from cached and freshly computed rows is
    bit-identical to one batched :func:`multi_source_distances` call —
    which is what makes the cache safe for the exactness contract of the
    batch engine.
    """

    def __init__(self, maxsize: int = DEFAULT_ROW_CACHE_SIZE) -> None:
        super().__init__(maxsize)

    def distance_rows(
        self,
        graph,
        sources,
        edge_costs: np.ndarray,
        *,
        reverse: bool,
        engine: str,
        heap: str,
        cost_key,
    ) -> np.ndarray:
        """``multi_source_distances`` with per-source row memoisation."""
        from repro.shortestpath.dijkstra import multi_source_distances

        sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
        n = graph.num_nodes
        out = np.empty((sources.size, n), dtype=np.float64)
        missing: list[int] = []
        for i, s in enumerate(sources):
            row = self._get((cost_key, bool(reverse), int(s)))
            if row is None:
                missing.append(i)
            else:
                out[i] = row
        if missing:
            fresh = multi_source_distances(
                graph,
                sources[missing],
                weights=edge_costs,
                engine=engine,
                heap=heap,
                reverse=reverse,
            )
            for k, i in enumerate(missing):
                out[i] = fresh[k]
                row = fresh[k].copy()
                row.setflags(write=False)
                self._put((cost_key, bool(reverse), int(sources[i])), row)
        return out


class TransitionCache(_LruCache):
    """Bounded LRU cache of finished SND transition values.

    Keys are the *ordered* fingerprint pair of the two states (Eq. 3 is
    symmetric, but term summation order differs under a swap, so the
    ordered key preserves the bit-identical contract); values are floats.
    ``misses`` counts fresh transitions actually solved — a sliding window
    shifted by one state shows exactly one miss per shift, and a corpus
    extension shows exactly one miss per *new* pair.
    """

    def __init__(self, maxsize: int = DEFAULT_TRANSITION_CACHE_SIZE) -> None:
        super().__init__(maxsize)

    @staticmethod
    def key(a: NetworkState, b: NetworkState) -> tuple[bytes, bytes]:
        return (GroundCostCache.fingerprint(a), GroundCostCache.fingerprint(b))

    def get(self, a: NetworkState, b: NetworkState) -> float | None:
        """Cached distance for the ordered pair, or ``None`` (counts the
        miss — the caller is expected to solve and :meth:`put` it)."""
        return self._get(self.key(a, b))

    def put(self, a: NetworkState, b: NetworkState, value: float) -> None:
        self._put(self.key(a, b), float(value))

    def contains(self, a: NetworkState, b: NetworkState) -> bool:
        """Membership probe that does **not** touch the hit/miss counters
        (used when seeding the cache with already-solved values, so
        ``fresh`` keeps counting exactly the pairs actually solved)."""
        return self.key(a, b) in self._entries

    @property
    def fresh(self) -> int:
        """Number of transitions actually solved (== misses)."""
        return self.misses

    @property
    def reused(self) -> int:
        """Number of transitions answered from the cache (== hits)."""
        return self.hits

    # ------------------------------------------------------------------ #
    # Persistence (the store's ``transition_cache`` table)
    # ------------------------------------------------------------------ #

    def export_rows(self) -> list[tuple[bytes, bytes, float]]:
        """Snapshot of every entry as ``(key_a, key_b, value)`` rows, in
        LRU order (oldest first), for spilling to the experiment store.
        Counter-free: exporting is not a lookup."""
        with self._lock:
            return [(ka, kb, float(v)) for (ka, kb), v in self._entries.items()]

    def seed_rows(self, rows) -> int:
        """Warm the cache from persisted ``(key_a, key_b, value)`` rows.

        Counter-neutral, like the corpus seeding path: seeded entries do
        not touch hit/miss, so ``fresh`` keeps counting only the pairs
        actually solved in this process.  The cache grows to fit the
        seed — restoring a spilled cache must not silently evict its own
        warm set.  Returns the number of entries inserted.
        """
        rows = list(rows)
        if not rows:
            return 0
        self.grow(len(rows) + len(self._entries))
        for key_a, key_b, value in rows:
            self._put((bytes(key_a), bytes(key_b)), float(value))
        return len(rows)


class BasisCache(_LruCache):
    """Bounded LRU store of optimal spanning-tree bases per EMD* term.

    Keys are ``(supplier fingerprint, consumer fingerprint, opinion)``;
    values are :class:`repro.flow.basis.TransportBasis` objects whose
    entries are *stable labels* (global node ids, bank bins as negative
    labels), so a basis cached for one term can be re-anchored onto the
    reduced instance of a different, temporally nearby term.

    :meth:`get_warm` resolves a hint through three channels, cheapest
    first:

    1. **exact** — the same term was solved before (replays);
    2. **reverse** — the transposed term ``(consumer, supplier, opinion)``
       was solved: the role-swapped tree (same node sets) transposes into
       a structurally valid start — this warms terms 3/4 of a pair from
       terms 1/2 within the *same* pair;
    3. **supplier** — the most recent term with the same supplier state
       and opinion: the previous window shift / corpus row, whose reduced
       node sets overlap heavily on temporally local workloads.

    Each channel has its own hit counter (``exact_hits`` etc.) so tests
    and benchmarks can assert *which* locality actually fired; a
    :meth:`get_warm` call counts exactly one hit or one miss. Since any
    basis is merely a hint (the solver repairs it against the new
    marginals), a stale or partially overlapping entry can never change a
    result — only pivot counts.
    """

    def __init__(self, maxsize: int = DEFAULT_BASIS_CACHE_SIZE) -> None:
        super().__init__(maxsize)
        # (supplier fingerprint, opinion) -> most recent full key; stale
        # references (evicted entries) are dropped lazily on lookup.
        self._index: dict = {}
        self.exact_hits = 0
        self.reverse_hits = 0
        self.supplier_hits = 0

    def put_term(self, key: tuple, basis) -> None:
        """Store the optimal basis of the term *key* (ordered key:
        ``(fp_supplier, fp_consumer, opinion)``)."""
        self._put(key, basis)
        with self._lock:
            self._index[(key[0], key[2])] = key

    def get_warm(self, key: tuple):
        """Best available warm-start hint for the term *key*, or ``None``."""
        fp_sup, fp_con, opinion = key
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                self.exact_hits += 1
                return entry
            reverse_key = (fp_con, fp_sup, opinion)
            entry = self._entries.get(reverse_key)
            if entry is not None:
                self._entries.move_to_end(reverse_key)
                self.hits += 1
                self.reverse_hits += 1
                return entry.transpose()
            near_key = self._index.get((fp_sup, opinion))
            if near_key is not None:
                entry = self._entries.get(near_key)
                if entry is None:
                    del self._index[(fp_sup, opinion)]  # evicted underneath
                else:
                    self._entries.move_to_end(near_key)
                    self.hits += 1
                    self.supplier_hits += 1
                    return entry
            self.misses += 1
            return None

    def stats(self) -> dict:
        out = super().stats()
        out["exact_hits"] = self.exact_hits
        out["reverse_hits"] = self.reverse_hits
        out["supplier_hits"] = self.supplier_hits
        return out

    def clear(self) -> None:
        super().clear()
        with self._lock:
            self._index.clear()

    def __getstate__(self):
        state = super().__getstate__()
        state["_index"] = {}  # entries don't travel, so neither does the index
        return state


class CacheManager:
    """One cache hierarchy for every SND entry point.

    Bundles a :class:`GroundCostCache`, a :class:`DijkstraRowCache`, and a
    :class:`TransitionCache` behind a single stats surface and an optional
    shared *memory_budget* (bytes). Existing cache instances can be
    adopted (``CacheManager(ground=my_cache)``), which is how the batch
    wrappers keep honouring caller-supplied caches while the engine sees
    one unified hierarchy.

    The budget is enforced on insert: while the total retained payload
    exceeds it, the least-recently-used entry of whichever member cache
    currently retains the most bytes is evicted (so an oversized row cache
    cannot crowd out the ground-cost arrays, and vice versa). Eviction
    never breaks correctness — every cache is a pure memoisation layer —
    it only costs rebuilds, which the per-cache ``evictions`` counters
    expose.

    Pickling ships the configuration but no entries (same contract as the
    member caches): process-pool workers rebuild their own hierarchy.
    """

    def __init__(
        self,
        *,
        ground_size: int = DEFAULT_CACHE_SIZE,
        row_size: int = DEFAULT_ROW_CACHE_SIZE,
        transition_size: int = DEFAULT_TRANSITION_CACHE_SIZE,
        basis_size: int = DEFAULT_BASIS_CACHE_SIZE,
        memory_budget: int | None = None,
        ground: GroundCostCache | None = None,
        rows: DijkstraRowCache | None = None,
        transitions: TransitionCache | None = None,
        bases: "BasisCache | None" = None,
    ) -> None:
        if memory_budget is not None and memory_budget < 1:
            raise ValidationError(
                f"memory_budget must be >= 1 byte, got {memory_budget}"
            )
        self.memory_budget = memory_budget
        self.ground = ground if ground is not None else GroundCostCache(ground_size)
        self.rows = rows if rows is not None else DijkstraRowCache(row_size)
        self.transitions = (
            transitions if transitions is not None else TransitionCache(transition_size)
        )
        self.bases = bases if bases is not None else BasisCache(basis_size)
        for cache in self._members():
            # Adopt unowned caches only: a cache already reporting to a
            # budgeted manager keeps doing so when a transient wrapper
            # manager borrows it for one call.
            if cache._manager is None:
                cache._manager = self

    def _members(self) -> tuple[_LruCache, ...]:
        return (self.ground, self.rows, self.transitions, self.bases)

    @property
    def nbytes(self) -> int:
        """Total retained payload bytes across the hierarchy."""
        return sum(cache.nbytes for cache in self._members())

    def _rebalance(self) -> None:
        """Evict LRU entries from the biggest cache until under budget."""
        if self.memory_budget is None:
            return
        while self.nbytes > self.memory_budget:
            victim = max(self._members(), key=lambda c: c.nbytes)
            if victim.evict_oldest() == 0:
                break  # nothing evictable left anywhere

    def ensure_ground_capacity(self, n_entries: int) -> None:
        """Grow the ground cache so *n_entries* cost arrays fit at once
        (pairwise sweeps size it to ``2·N`` to keep builds linear)."""
        self.ground.grow(n_entries)

    def stats(self) -> dict:
        """Per-cache counters plus the hierarchy totals.

        Keys ``ground`` / ``rows`` / ``transitions`` / ``bases`` each map
        to the member's :meth:`_LruCache.stats` dict (hits, misses,
        builds, evictions, size, max_size, nbytes — the basis store adds
        its per-channel warm-hit counters); ``total_nbytes`` and
        ``memory_budget`` summarise the shared budget.
        """
        return {
            "ground": self.ground.stats(),
            "rows": self.rows.stats(),
            "transitions": self.transitions.stats(),
            "bases": self.bases.stats(),
            "total_nbytes": self.nbytes,
            "memory_budget": self.memory_budget,
        }

    def clear(self) -> None:
        for cache in self._members():
            cache.clear()

    def __getstate__(self):
        return {
            "memory_budget": self.memory_budget,
            "ground": self.ground,
            "rows": self.rows,
            "transitions": self.transitions,
            "bases": self.bases,
        }

    def __setstate__(self, state):
        self.memory_budget = state["memory_budget"]
        self.ground = state["ground"]
        self.rows = state["rows"]
        self.transitions = state["transitions"]
        # Managers pickled before the basis store existed rebuild a default.
        self.bases = state.get("bases") or BasisCache()
        for cache in self._members():
            if cache._manager is None:
                cache._manager = self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheManager(ground={len(self.ground)}, rows={len(self.rows)}, "
            f"transitions={len(self.transitions)}, bases={len(self.bases)}, "
            f"nbytes={self.nbytes}, budget={self.memory_budget})"
        )
