"""Social Network Distance (SND) — the paper's core contribution (§3-§5).

:class:`SND` is the user-facing facade::

    from repro import SND, ModelAgnostic
    snd = SND(graph, model=ModelAgnostic(), n_clusters=8)
    value = snd.distance(state_a, state_b)

Internally each call evaluates the four EMD* terms of Eq. 3 with ground
distances built from Eq. 2, using the linear-time reduced pipeline of
Theorem 4 (:mod:`repro.snd.fast`); :mod:`repro.snd.direct` computes the
same quantity without the reduction, for validation and the Fig. 11
baseline.

Batch workloads — whole-series sweeps and all-pairs matrices — run through
:mod:`repro.snd.batch`::

    distances = snd.evaluate_series(series, jobs=4)   # d_t = SND(G_t, G_{t+1})
    matrix = snd.pairwise_matrix(series)              # symmetric, zero diagonal

Every entry point shares the instance's unified cache hierarchy
(:class:`~repro.snd.cache.CacheManager`: Eq. 2 cost arrays, per-source
shortest-path rows, finished transition values — one optional memory
budget, one stats surface), and all return values bit-identical to the
per-pair loop. ``evaluate_series(window=W)`` additionally runs the
incremental sliding-window mode: each one-state window shift re-solves
exactly one fresh transition.

Online workloads — repeated sweeps, growing corpora, state streams — hold
a persistent engine (:mod:`repro.snd.engine`) whose workers attach once
to a shared-memory state matrix::

    with snd.create_engine(jobs=4) as engine:
        engine.evaluate_series(series)            # pool launched once
        corpus = Corpus(engine, list(series))
        corpus.extend(new_states)                 # solves only the new pairs
        for update in engine.stream(arriving):    # online anomaly detection
            ...
"""

from repro.snd.banks import BankAllocation, allocate_banks
from repro.snd.batch import evaluate_series, pairwise_matrix
from repro.snd.cache import (
    CacheManager,
    DijkstraRowCache,
    GroundCostCache,
    TransitionCache,
)
from repro.snd.direct import snd_direct
from repro.snd.engine import Corpus, SNDEngine, StreamUpdate
from repro.snd.ground import GroundDistanceConfig, build_edge_costs, quantize_costs
from repro.snd.scheduler import DEFAULT_MAX_PENDING, PairScheduler, resolve_jobs
from repro.snd.snd import SND

__all__ = [
    "SND",
    "SNDEngine",
    "Corpus",
    "StreamUpdate",
    "PairScheduler",
    "DEFAULT_MAX_PENDING",
    "resolve_jobs",
    "snd_direct",
    "BankAllocation",
    "allocate_banks",
    "CacheManager",
    "DijkstraRowCache",
    "GroundCostCache",
    "TransitionCache",
    "GroundDistanceConfig",
    "build_edge_costs",
    "evaluate_series",
    "pairwise_matrix",
    "quantize_costs",
]
