"""The persistent SND engine: long-lived pools, corpora, and streaming.

The paper's online workloads — anomaly detection over arriving Twitter
states (§6.2) and metric-space search/clustering over growing corpora
(§9) — evaluate SND repeatedly against largely unchanged data. The batch
wrappers in :mod:`repro.snd.batch` rebuild their process pool on every
call and recompute pairwise matrices from scratch on every append; this
module makes the evaluate-as-states-arrive path first-class:

:class:`SNDEngine`
    A long-lived evaluator over one :class:`~repro.snd.snd.SND` instance.
    Its worker pool persists across calls, and process workers attach
    **once** to a :mod:`multiprocessing.shared_memory`-backed state
    matrix: per-call payloads are bare index pairs, killing both the
    pool-startup cost and the per-call matrix pickling that make ``jobs=``
    lose on small sweeps. All entry points share the engine's
    :class:`~repro.snd.cache.CacheManager` hierarchy.

:class:`Corpus`
    An appendable state collection whose pairwise SND matrix extends
    incrementally: appending ``k`` states to an ``N``-state corpus solves
    only the ``k·N + k·(k-1)/2`` new pairs through the engine's
    :class:`~repro.snd.cache.TransitionCache` (counter-assertable), with
    the resulting matrix bit-identical to a from-scratch
    :meth:`SNDEngine.pairwise_matrix` — pairs are independent and run the
    exact same per-pair pipeline, so incremental extension is a pure
    work-avoidance transform.

:meth:`SNDEngine.stream`
    Consumes states one at a time, maintains the sliding-window distance
    series through the transition cache, and drives an online
    :class:`~repro.analysis.anomaly.StreamingAnomalyDetector` — the
    ``repro-snd watch`` CLI path.

Exactness contract: every path funnels through the same
:func:`_pair_distance` per-pair pipeline as :meth:`SND.evaluate` (same
cost arrays, same solver, same summation order), so results are
bit-identical to the naive per-pair loop in every execution mode.

Scheduling — cache probing, request coalescing, chunking, and pool
dispatch — lives in :mod:`repro.snd.scheduler`; every engine entry point
is a client of the engine's own :class:`~repro.snd.scheduler.PairScheduler`.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.flow.network_simplex import SIMPLEX_METRICS
from repro.flow.sinkhorn_hybrid import HYBRID_METRICS
from repro.opinions.state import NEGATIVE, POSITIVE, NetworkState, StateSeries
from repro.snd.cache import (
    DEFAULT_CACHE_SIZE,
    CacheManager,
    GroundCostCache,
    TransitionCache,
)
from repro.snd.scheduler import (  # noqa: F401 - re-exported for compat
    DEFAULT_MAX_PENDING,
    PairScheduler,
    _chunk_ranges,
    _missing_runs,
    resolve_jobs,
)

__all__ = ["SNDEngine", "Corpus", "StreamUpdate", "resolve_jobs"]

#: Solvers whose per-term solves can consume a warm spanning-tree basis.
#: ``use_basis_cache="auto"`` activates the basis store for the pure
#: network-simplex solver and for ``solver="auto"`` (whose basis-aware
#: selection routes instances holding a cached basis to the network
#: simplex — value-neutral by the warm-exactness contract either way);
#: ``use_basis_cache=True`` extends it to the sinkhorn-hybrid tier by
#: routing its restricted exact solve through the network simplex.
WARM_SOLVERS = ("network-simplex", "sinkhorn-hybrid")


# --------------------------------------------------------------------- #
# Single-pair evaluation through the caches
# --------------------------------------------------------------------- #


def _pair_distance(
    snd,
    a: NetworkState,
    b: NetworkState,
    cache: GroundCostCache,
    row_cache=None,
    basis_cache=None,
) -> float:
    """One Eq. 3 evaluation with ground costs drawn from *cache*.

    Term order and summation match :meth:`SND.evaluate` exactly so the
    result is bit-identical to the unbatched path; *row_cache* (optional)
    additionally reuses per-source Dijkstra rows across terms, which is
    value-preserving (rows are per-source deterministic). *basis_cache*
    (optional, warm-capable solvers only) keys each term's optimal
    spanning-tree basis by ``(fingerprint_supplier, fingerprint_consumer,
    opinion)`` so temporally adjacent pairs — window shifts, corpus
    appends, the reverse terms of this very pair — warm-start the network
    simplex; warm solves are exact, so this too is value-preserving.
    """
    ground, graph = snd.ground, snd.graph
    key_a, key_b = GroundCostCache.fingerprint(a), GroundCostCache.fingerprint(b)
    terms = (
        snd.term(
            a, b, POSITIVE,
            edge_costs=cache.edge_costs(ground, graph, a, POSITIVE),
            row_cache=row_cache, cost_key=(key_a, POSITIVE),
            basis_cache=basis_cache, basis_key=(key_a, key_b, POSITIVE),
        ),
        snd.term(
            a, b, NEGATIVE,
            edge_costs=cache.edge_costs(ground, graph, a, NEGATIVE),
            row_cache=row_cache, cost_key=(key_a, NEGATIVE),
            basis_cache=basis_cache, basis_key=(key_a, key_b, NEGATIVE),
        ),
        snd.term(
            b, a, POSITIVE,
            edge_costs=cache.edge_costs(ground, graph, b, POSITIVE),
            row_cache=row_cache, cost_key=(key_b, POSITIVE),
            basis_cache=basis_cache, basis_key=(key_b, key_a, POSITIVE),
        ),
        snd.term(
            b, a, NEGATIVE,
            edge_costs=cache.edge_costs(ground, graph, b, NEGATIVE),
            row_cache=row_cache, cost_key=(key_b, NEGATIVE),
            basis_cache=basis_cache, basis_key=(key_b, key_a, NEGATIVE),
        ),
    )
    return 0.5 * sum(terms)


# --------------------------------------------------------------------- #
# Process-pool plumbing
# --------------------------------------------------------------------- #

# Worker-global context, set once per process by the pool initializer so
# per-task payloads are bare index pairs (the SND instance crosses the
# process boundary exactly once, the state matrix zero times — workers
# read it straight out of shared memory).
_ENGINE_WORKER: dict = {}


def _attach_shared_memory(name: str):
    """Attach to an existing shared-memory block without registering it
    with this process's resource tracker (the creating engine owns the
    lifetime; double-registration makes the tracker unlink blocks that
    are still in use and spam warnings at worker exit)."""
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)  # py >= 3.13
    except TypeError:  # pragma: no cover - version-dependent
        # Older Pythons register even plain attaches; several forked
        # workers sharing one tracker would then race each other's
        # unregister at exit. Suppressing registration during the attach
        # (worker-local, initializer is single-threaded) sidesteps both.
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _init_engine_worker(snd, shm_name, shape, ground_size, row_size, basis_size=0) -> None:
    """Attach this worker to the engine's shared state matrix (once).

    *row_size* and *basis_size* of 0 disable the respective worker-local
    cache (the cache object still exists — content-keyed caches are
    per-process, so a worker's basis store warms only solves dispatched
    to that worker; chunk contiguity keeps related pairs together).
    """
    if shm_name is None:
        matrix = shape  # no shared memory available: *shape* is the matrix
    else:
        shm = _attach_shared_memory(shm_name)
        _ENGINE_WORKER["shm"] = shm  # keep the mapping alive
        matrix = np.ndarray(shape, dtype=np.int8, buffer=shm.buf)
    _ENGINE_WORKER["snd"] = snd
    _ENGINE_WORKER["matrix"] = matrix
    _ENGINE_WORKER["caches"] = CacheManager(
        ground_size=ground_size,
        row_size=max(1, row_size),
        basis_size=max(1, basis_size),
    )
    _ENGINE_WORKER["row_cache_enabled"] = row_size > 0
    _ENGINE_WORKER["basis_cache_enabled"] = basis_size > 0


def _engine_pairs_worker(pairs: list[tuple[int, int]]) -> list[float]:
    """Distances for explicit row-index pairs read from shared memory.

    States are rebuilt from row *copies* (a row is ``n`` int8 bytes —
    negligible next to one SND solve), so later overwrites of the shared
    slots by the parent can never alias into a result; the worker's
    content-keyed caches provide the actual reuse across tasks.
    """
    snd = _ENGINE_WORKER["snd"]
    matrix = _ENGINE_WORKER["matrix"]
    caches: CacheManager = _ENGINE_WORKER["caches"]
    row_cache = caches.rows if _ENGINE_WORKER["row_cache_enabled"] else None
    basis_cache = caches.bases if _ENGINE_WORKER["basis_cache_enabled"] else None
    local: dict[int, NetworkState] = {}

    def state(i: int) -> NetworkState:
        s = local.get(i)
        if s is None:
            s = NetworkState(matrix[i].copy())
            local[i] = s
        return s

    return [
        _pair_distance(snd, state(i), state(j), caches.ground, row_cache, basis_cache)
        for i, j in pairs
    ]


# --------------------------------------------------------------------- #
# Stream updates
# --------------------------------------------------------------------- #


@dataclass
class StreamUpdate:
    """One step of :meth:`SNDEngine.stream`.

    *distance* is ``SND(G_{t-1}, G_t)`` for the state just consumed
    (``None`` for the first state); *window_distances* is the current
    sliding window of recent distances (most recent last); *scored* is the
    newly finalised anomaly score, which lags one state behind the
    distance because the spike score ``S_t`` needs the right neighbour
    ``d_{t+1}`` (the final flush update carries ``distance=None`` and the
    last score).
    """

    index: int
    state: NetworkState | None
    distance: float | None
    window_distances: np.ndarray = field(default_factory=lambda: np.empty(0))
    scored: "object | None" = None


# --------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------- #


class SNDEngine:
    """Long-lived SND evaluator with a persistent worker pool.

    Parameters
    ----------
    snd:
        The :class:`~repro.snd.snd.SND` instance to evaluate through.
    jobs:
        ``"auto"`` (default — serial on single-CPU hosts, up to 4 workers
        otherwise), an explicit worker count (>= 1), or ``None`` for
        serial.
    executor:
        ``"process"`` (default; shared-memory state matrix) or
        ``"thread"`` (workers share the engine caches directly).
    caches:
        A :class:`~repro.snd.cache.CacheManager` to draw from; defaults to
        the SND instance's own hierarchy so the engine, the batch
        wrappers, and single-pair calls all reuse one set of caches.
    use_row_cache:
        Reuse per-source Dijkstra rows across terms (on by default;
        value-preserving).
    use_basis_cache:
        Warm-start transportation solves from cached optimal bases.
        ``"auto"`` (default) activates the basis store when the SND
        instance solves with ``"network-simplex"`` (warm bases consumed
        natively, provably value-preserving) or with ``"auto"`` (the
        basis-aware selection policy then routes exact mid/large
        instances holding a cached basis to the network simplex, so
        temporally-local engine workloads warm-start without any
        opt-in). ``True`` additionally opts the
        ``"sinkhorn-hybrid"`` tier in (its restricted exact solve is then
        routed through the network simplex; same support, so certified
        error bounds are unchanged). ``False`` disables warm-starting.
    max_pending:
        Bound on unique pairs the engine's scheduler will hold admitted
        at once (backpressure; see :class:`~repro.snd.scheduler.PairScheduler`).
    client_max_pending:
        Optional per-client fairness quota for the scheduler (see
        :class:`~repro.snd.scheduler.PairScheduler`); ``None`` (default)
        disables per-client caps.

    The pool and the shared-memory block are created lazily on the first
    parallel call and reused until :meth:`close` (the engine is a context
    manager). ``pool_starts`` counts pool launches, which makes
    persistence testable: two sweeps through one engine show one start,
    where the batch wrappers would show two.

    Every evaluation entry point routes through ``self.scheduler``, so
    concurrent callers sharing one engine get their duplicate pairs
    coalesced into single solves (assertable via ``scheduler.stats()``).
    """

    def __init__(
        self,
        snd,
        *,
        jobs="auto",
        executor: str = "process",
        caches: CacheManager | None = None,
        use_row_cache: bool = True,
        use_basis_cache: "bool | str" = "auto",
        max_pending: int = DEFAULT_MAX_PENDING,
        client_max_pending: int | None = None,
    ) -> None:
        if executor not in ("process", "thread"):
            raise ValidationError(
                f"executor must be 'process' or 'thread', got {executor!r}"
            )
        if use_basis_cache not in (True, False, "auto"):
            raise ValidationError(
                f"use_basis_cache must be True, False or 'auto', "
                f"got {use_basis_cache!r}"
            )
        self.snd = snd
        self.jobs = resolve_jobs(jobs)
        self.executor = executor
        self.caches = caches if caches is not None else snd.caches
        self.use_row_cache = use_row_cache
        self.use_basis_cache = use_basis_cache
        self.pool_starts = 0
        self.slot_writes = 0
        self._slots: dict[bytes, int] = {}
        self._pool = None
        self._shm = None
        self._matrix: np.ndarray | None = None
        self._capacity = 0
        self._n_users: int | None = None
        self._closed = False
        self.scheduler = PairScheduler(
            self, max_pending=max_pending, client_max_pending=client_max_pending
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Shut down the worker pool and release the shared-memory block.

        Idempotent: double ``close()``, context-manager exit after an
        explicit ``close()``, and ``__del__`` after ``close()`` are all
        no-ops that neither raise nor double-release the segment.
        """
        self._shutdown_pool()
        self._closed = True

    def _shutdown_pool(self) -> None:
        # getattr guards: __del__ can run on a partially constructed
        # instance (failed __init__) or during interpreter shutdown.
        pool = getattr(self, "_pool", None)
        if pool is not None:
            self._pool = None
            pool.shutdown(wait=True)
        shm = getattr(self, "_shm", None)
        if shm is not None:
            # None out first so a re-entrant/second call can never see a
            # half-released segment and unlink it twice.
            self._shm = None
            self._matrix = None
            try:
                shm.close()
                shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover - gone
                pass
        self._capacity = 0
        self._slots = {}

    def __enter__(self) -> "SNDEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self._shutdown_pool()
        except BaseException:
            # Interpreter shutdown can leave modules half-torn-down;
            # nothing useful can be reported from a finalizer.
            pass

    # ------------------------------------------------------------------ #
    # Pool management
    # ------------------------------------------------------------------ #

    def _ensure_process_pool(self, states: Sequence[NetworkState]):
        """The persistent process pool plus a slot index for *states*.

        Slot assignment is **append-only**: a state already resident in
        the shared matrix (matched by content fingerprint) keeps its slot
        and is not rewritten, so extending an ``N``-state corpus by ``k``
        states writes ``k`` rows instead of ``N + k`` (``slot_writes``
        counts actual row writes, which makes this assertable). When the
        distinct-state population outgrows the matrix, only the slot
        *map* is reset and rows are reassigned from slot 0 — the pool
        survives. That is safe because dispatches fully drain before
        returning (no task is in flight between calls, so a remapped slot
        can never race a reader) and worker caches are content-keyed, so
        remapping costs nothing but the row writes.

        Returns ``(pool, slot_of)`` where ``slot_of[i]`` is the shared
        matrix row now holding ``states[i]``.
        """
        if self._closed:
            raise ValidationError("engine is closed")
        n, n_users = len(states), states[0].n
        if self._pool is not None and (
            n > self._capacity
            or n_users != self._n_users
            # Without shared memory the workers hold a pickled snapshot of
            # the matrix, so the pool cannot survive a data change.
            or self._shm is None
        ):
            self._shutdown_pool()  # outgrown: remap and relaunch
        if self._pool is None:
            self._capacity = max(64, 2 * n)
            self._n_users = n_users
            self._slots = {}
            shm_name = None
            shape = (self._capacity, n_users)
            try:
                from multiprocessing import shared_memory

                self._shm = shared_memory.SharedMemory(
                    create=True, size=self._capacity * n_users
                )
                self._matrix = np.ndarray(shape, dtype=np.int8, buffer=self._shm.buf)
                shm_name = self._shm.name
            except (ImportError, OSError):  # pragma: no cover - no /dev/shm
                self._shm = None
                self._matrix = np.zeros(shape, dtype=np.int8)
            ground_size = max(self.caches.ground.maxsize, 2 * self._capacity)
            row_size = self.caches.rows.maxsize if self.use_row_cache else 0
            basis_size = (
                self.caches.bases.maxsize if self._basis_cache() is not None else 0
            )
            init_matrix = None if shm_name is not None else self._matrix
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_engine_worker,
                initargs=(
                    self.snd,
                    shm_name,
                    shape if shm_name is not None else init_matrix,
                    ground_size,
                    row_size,
                    basis_size,
                ),
            )
            self.pool_starts += 1
        slots = self._slots
        fingerprints = [GroundCostCache.fingerprint(s) for s in states]
        fresh = [fp for fp in dict.fromkeys(fingerprints) if fp not in slots]
        if len(slots) + len(fresh) > self._capacity:
            slots.clear()  # out of rows: remap from slot 0, keep the pool
        for fp, s in zip(fingerprints, states):
            if fp not in slots:
                slot = len(slots)
                slots[fp] = slot
                self._matrix[slot] = s.values
                self.slot_writes += 1
        return self._pool, [slots[fp] for fp in fingerprints]

    def _ensure_thread_pool(self):
        if self._closed:
            raise ValidationError("engine is closed")
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.jobs)
            self.pool_starts += 1
        return self._pool

    # ------------------------------------------------------------------ #
    # Core pair evaluation
    # ------------------------------------------------------------------ #

    def _row_cache(self):
        return self.caches.rows if self.use_row_cache else None

    def _basis_cache(self):
        """The engine's warm-start basis store, or ``None`` when inactive.

        Activation is solver-gated (see ``use_basis_cache``): warm hints
        are only consumed by :data:`WARM_SOLVERS`, and under ``"auto"``
        only by warm-exact routes — the pure network simplex and the
        ``"auto"`` solver, whose basis-aware selection policy
        (:func:`repro.flow.select_transport_method`) steers instances with
        a cached basis onto the network simplex.
        """
        mode = self.use_basis_cache
        if mode is False:
            return None
        solver = getattr(self.snd, "solver", None)
        active = (
            solver in ("network-simplex", "auto")
            if mode == "auto"
            else solver in WARM_SOLVERS + ("auto",)
        )
        return self.caches.bases if active else None

    def _pair(self, a: NetworkState, b: NetworkState) -> float:
        """One serial pair evaluation through the engine caches."""
        return _pair_distance(
            self.snd, a, b, self.caches.ground, self._row_cache(), self._basis_cache()
        )

    def distance(self, a: NetworkState, b: NetworkState) -> float:
        """SND between two states through the engine's cache hierarchy."""
        return self._pair(a, b)

    def _solve_pairs_local(
        self,
        states: Sequence[NetworkState],
        pairs: Sequence[tuple[int, int]],
    ) -> list[float]:
        """Serial in-process solve of index *pairs* over *states*."""
        row_cache = self._row_cache()
        basis_cache = self._basis_cache()
        return [
            _pair_distance(
                self.snd, states[i], states[j], self.caches.ground, row_cache,
                basis_cache,
            )
            for i, j in pairs
        ]

    def _dispatch_chunks(
        self,
        states: Sequence[NetworkState],
        chunks: list[list[tuple[int, int]]],
    ) -> list[list[float]]:
        """Dispatch pre-chunked index pairs to the persistent pool.

        Callers (the scheduler) must serialize dispatches: the process
        path rewrites *states* into the shared matrix rows, so two
        concurrent dispatches would clobber each other's slots. Chunks
        are expected to be contiguous-ish so worker caches keep supplier
        states hot.
        """
        if self.executor == "thread":
            pool = self._ensure_thread_pool()
            row_cache = self._row_cache()
            basis_cache = self._basis_cache()

            def run(chunk: list[tuple[int, int]]) -> list[float]:
                return [
                    _pair_distance(
                        self.snd, states[i], states[j], self.caches.ground, row_cache,
                        basis_cache,
                    )
                    for i, j in chunk
                ]

            return list(pool.map(run, chunks))
        pool, slot_of = self._ensure_process_pool(states)
        # Translate caller indices to shared-matrix slots: append-only
        # assignment means a state's slot is stable across dispatches, not
        # necessarily equal to its position in *states*.
        slot_chunks = [[(slot_of[i], slot_of[j]) for i, j in chunk] for chunk in chunks]
        return list(pool.map(_engine_pairs_worker, slot_chunks))

    def _evaluate_pairs(
        self,
        states: Sequence[NetworkState],
        chunks: list[list[tuple[int, int]]],
    ) -> list[list[float]]:
        """Distances for pre-chunked index pairs over *states*.

        Serial when the engine is serial or there is a single tiny chunk;
        otherwise dispatched to the persistent pool.
        """
        n_pairs = sum(len(c) for c in chunks)
        if self.jobs <= 1 or n_pairs <= 1:
            return [self._solve_pairs_local(states, chunk) for chunk in chunks]
        return self._dispatch_chunks(states, chunks)

    # ------------------------------------------------------------------ #
    # Series evaluation
    # ------------------------------------------------------------------ #

    def evaluate_series(
        self,
        series: StateSeries,
        *,
        transitions: TransitionCache | None = None,
        window: int | None = None,
    ) -> np.ndarray:
        """Adjacent-state distances ``d_t = SND(G_t, G_{t+1})``.

        *transitions* (optional) memoises finished values across calls:
        cached transitions are answered before any worker dispatch, so a
        sweep over a window shifted by one state re-solves exactly one
        transition. *window* runs the whole series through overlapping
        length-*window* sub-sweeps sharing the engine transition cache and
        returns the same ``(T-1,)`` array as the from-scratch sweep.

        Values are bit-identical to ``[snd.distance(a, b) for a, b in
        series.transitions()]`` in every mode.
        """
        n_transitions = len(series) - 1
        if n_transitions <= 0:
            return np.empty(0, dtype=np.float64)

        if window is not None:
            if window < 2:
                raise ValidationError(
                    f"window must span at least one transition (>= 2 states), "
                    f"got {window}"
                )
            if transitions is None:
                transitions = self.caches.transitions
            window = min(int(window), len(series))
            out = np.empty(n_transitions, dtype=np.float64)
            for start in range(0, len(series) - window + 1):
                vals = self.evaluate_series(
                    series[start : start + window], transitions=transitions
                )
                out[start : start + window - 1] = vals
            return out

        states = list(series)
        pairs = [(t, t + 1) for t in range(n_transitions)]
        # The scheduler probes the transition cache per pair (preserving
        # its hit/miss counters exactly), solves the misses in contiguous
        # chunks, and writes the fresh values back.
        values = self.scheduler.evaluate(states, pairs, transitions=transitions)
        return np.asarray(values, dtype=np.float64)

    # ------------------------------------------------------------------ #
    # Pairwise matrices
    # ------------------------------------------------------------------ #

    def pairwise_matrix(
        self,
        states,
        *,
        transitions: TransitionCache | None = None,
        jobs=None,
    ) -> np.ndarray:
        """Symmetric ``(N, N)`` SND matrix over *states*, upper triangle only.

        Eq. 3 is symmetric by construction, so only the ``N·(N-1)/2``
        pairs ``i < j`` are evaluated and mirrored; the diagonal is
        exactly 0. The ground cache is grown to hold ``2·N`` cost arrays
        so each state's two arrays are built once. *transitions*
        (optional) answers already-solved pairs from the cache before any
        dispatch — the lever behind :meth:`Corpus.extend`. *jobs*
        overrides the engine's worker count for this call only (it cannot
        exceed the persistent pool's size).
        """
        states = list(states)
        n = len(states)
        out = np.zeros((n, n), dtype=np.float64)
        if n < 2:
            return out
        self.caches.ensure_ground_capacity(max(DEFAULT_CACHE_SIZE, 2 * n))

        # Pairs are emitted grouped by row, so the scheduler's contiguous
        # chunks keep the supplier-side cost arrays hot in each worker.
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        values = self.scheduler.evaluate(
            states, pairs, transitions=transitions, jobs=jobs
        )
        for (i, j), v in zip(pairs, values):
            out[i, j] = out[j, i] = v
        return out

    # ------------------------------------------------------------------ #
    # Streaming
    # ------------------------------------------------------------------ #

    def stream(
        self,
        states: Iterable[NetworkState],
        *,
        window: int | None = None,
        detector=None,
        transitions: TransitionCache | None = None,
    ) -> Iterator[StreamUpdate]:
        """Consume states one at a time, yielding a :class:`StreamUpdate`
        per state (plus one final flush update).

        Each arriving state solves exactly one new transition — unless the
        transition cache already holds it (replays, overlapping streams) —
        maintains the sliding window of the last ``window - 1`` distances,
        and feeds the online *detector* (default: a fresh
        :class:`~repro.analysis.anomaly.StreamingAnomalyDetector`). The
        spike score needs the right neighbour, so ``update.scored`` lags
        one state behind ``update.distance``; the final flush update
        (``distance=None``) carries the last transition's score.
        """
        from repro.analysis.anomaly import StreamingAnomalyDetector

        if window is not None and window < 2:
            raise ValidationError(
                f"window must span at least one transition (>= 2 states), "
                f"got {window}"
            )
        if transitions is None:
            transitions = self.caches.transitions
        if detector is None:
            detector = StreamingAnomalyDetector()
        recent: deque = deque(maxlen=(window - 1) if window is not None else None)
        prev: NetworkState | None = None
        index = -1
        for index, state in enumerate(states):
            distance = None
            scored = None
            if prev is not None:
                # One pair through the scheduler: answered from the
                # transition cache when already solved (replays,
                # overlapping streams), coalesced with any concurrent
                # request for the same transition otherwise.
                distance = self.scheduler.submit(prev, state, transitions=transitions)
                recent.append(distance)
                scored = detector.push(distance, active_count=state.n_active)
            yield StreamUpdate(
                index=index,
                state=state,
                distance=distance,
                window_distances=np.asarray(recent, dtype=np.float64),
                scored=scored,
            )
            prev = state
        final = detector.finalize()
        if final is not None:
            yield StreamUpdate(
                index=index,
                state=prev,
                distance=None,
                window_distances=np.asarray(recent, dtype=np.float64),
                scored=final,
            )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        """Cache hierarchy counters plus engine/pool state (benchmark
        JSON-ready).

        The ``"hybrid"`` block aggregates the sinkhorn-hybrid solver's
        per-solve diagnostics (support density, certified error bounds);
        the ``"network_simplex"`` block aggregates the warm-startable
        simplex tier's pivot counters, split cold vs warm
        (``cold_pivots_per_solve`` / ``warm_pivots_per_solve`` — the
        headline temporal-locality numbers in ``BENCH_engine.json``).
        Both are process-local: serial and thread executors are covered
        fully; process workers accumulate in-worker and this snapshot
        then only reflects solves that ran in the engine's own process.
        ``slot_writes`` counts shared-matrix row writes — append-only
        slot assignment keeps it at the number of *distinct* states ever
        dispatched, not dispatches times states.
        """
        return {
            "caches": self.caches.stats(),
            "scheduler": self.scheduler.stats(),
            "hybrid": HYBRID_METRICS.snapshot(),
            "network_simplex": SIMPLEX_METRICS.snapshot(),
            "jobs": self.jobs,
            "executor": self.executor,
            "pool_starts": self.pool_starts,
            "pool_alive": self._pool is not None,
            "shared_memory": self._shm is not None,
            "capacity": self._capacity,
            "slot_writes": self.slot_writes,
            "basis_cache_active": self._basis_cache() is not None,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SNDEngine(jobs={self.jobs}, executor={self.executor!r}, "
            f"pool_starts={self.pool_starts}, capacity={self._capacity})"
        )


# --------------------------------------------------------------------- #
# Corpus
# --------------------------------------------------------------------- #


class Corpus:
    """An appendable state corpus with an incrementally extended SND matrix.

    The §9 metric-space applications (search, clustering, classification)
    consume all-pairs distance matrices over corpora that *grow*:
    recomputing the matrix from scratch on every append wastes
    ``N·(N-1)/2`` solved pairs. A corpus keeps its matrix and solves only
    the ``k·N + k·(k-1)/2`` new pairs when ``k`` states arrive, through
    the engine's :class:`~repro.snd.cache.TransitionCache` — bit-identical
    to a from-scratch :meth:`SNDEngine.pairwise_matrix` because every pair
    runs the exact same per-pair pipeline and pairs are independent.

    Examples
    --------
    >>> from repro.graph import erdos_renyi_graph
    >>> from repro.opinions import NetworkState
    >>> from repro.snd import SND, SNDEngine, Corpus
    >>> g = erdos_renyi_graph(30, 0.2, seed=1)
    >>> engine = SNDEngine(SND(g, n_clusters=2, seed=0), jobs=None)
    >>> states = [NetworkState.from_active_sets(30, positive=[k]) for k in range(3)]
    >>> corpus = Corpus(engine, states)
    >>> corpus.matrix.shape
    (3, 3)
    >>> corpus.extend([NetworkState.from_active_sets(30, positive=[9])]).shape
    (4, 4)
    """

    def __init__(self, engine: SNDEngine, states: Sequence[NetworkState] = ()) -> None:
        if not isinstance(engine, SNDEngine):
            engine = SNDEngine(engine)  # accept a bare SND for convenience
        self.engine = engine
        self._states: list[NetworkState] = []
        self._matrix = np.zeros((0, 0), dtype=np.float64)
        states = list(states)
        if states:
            self.extend(states)

    @property
    def states(self) -> list[NetworkState]:
        """The corpus members, append order preserved."""
        return list(self._states)

    @property
    def matrix(self) -> np.ndarray:
        """The current ``(N, N)`` pairwise SND matrix (a copy)."""
        return self._matrix.copy()

    def __len__(self) -> int:
        return len(self._states)

    def append(self, state: NetworkState) -> np.ndarray:
        """Add one state; solves exactly ``N`` new pairs."""
        return self.extend([state])

    def extend(self, new_states: Sequence[NetworkState]) -> np.ndarray:
        """Append *new_states*, extending the matrix incrementally.

        Only pairs touching a new state are solved (``k·N + k·(k-1)/2``
        fresh transitions through the engine's transition cache — its
        ``fresh`` counter makes that assertable); the existing ``N×N``
        block is copied verbatim. Returns the new matrix (a copy).
        """
        new_states = list(new_states)
        if not new_states:
            return self.matrix
        old_n = len(self._states)
        states = self._states + new_states
        n = len(states)
        transitions = self.engine.caches.transitions
        # Every pair of the extended matrix must fit in the cache at once:
        # with a smaller capacity, LRU eviction during seeding would chase
        # the probe order and silently re-solve old pairs (values stay
        # correct, work-avoidance doesn't). grow() never shrinks.
        transitions.grow(n * (n - 1) // 2)
        # Seed the cache with the already-solved block so the engine's
        # pairwise sweep only dispatches pairs touching a new state. The
        # counter-free membership probe keeps ``transitions.fresh`` equal
        # to the number of pairs actually solved.
        for i in range(old_n):
            for j in range(i + 1, old_n):
                if not transitions.contains(self._states[i], self._states[j]):
                    transitions.put(self._states[i], self._states[j], self._matrix[i, j])
        matrix = self.engine.pairwise_matrix(states, transitions=transitions)
        assert matrix.shape == (n, n)
        self._states = states
        self._matrix = matrix
        return self.matrix

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query(self, state: NetworkState, k: int = 1) -> list[tuple[int, float]]:
        """The *k* nearest corpus members to *state*: ``(index, distance)``
        pairs, nearest first (ties broken by index)."""
        if not self._states:
            raise ValidationError("corpus is empty")
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        # (query, member) argument order is preserved through the
        # scheduler so values stay bit-identical to the per-pair loop.
        query_states = [state] + self._states
        query_pairs = [(0, m + 1) for m in range(len(self._states))]
        distances = np.array(self.engine.scheduler.evaluate(query_states, query_pairs))
        order = np.argsort(distances, kind="stable")[: min(k, len(self._states))]
        return [(int(i), float(distances[i])) for i in order]

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(self, store, graph_name: str, corpus_name: str) -> int:
        """Persist states + matrix to an :class:`~repro.store.ExperimentStore`."""
        series = StateSeries(self._states) if self._states else None
        if series is None:
            raise ValidationError("cannot save an empty corpus")
        return store.save_corpus(graph_name, corpus_name, series, self._matrix)

    @classmethod
    def load(cls, store, engine: SNDEngine, graph_name: str, corpus_name: str) -> "Corpus":
        """Rehydrate a saved corpus; the stored matrix is trusted verbatim
        (it was produced by the same bit-identical pipeline)."""
        series, matrix = store.load_corpus(graph_name, corpus_name)
        corpus = cls(engine)
        corpus._states = list(series)
        corpus._matrix = np.asarray(matrix, dtype=np.float64).copy()
        return corpus

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Corpus(n_states={len(self._states)}, engine={self.engine!r})"
