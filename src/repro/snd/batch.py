"""Batch SND evaluation: thin wrappers over a transient engine.

Every experiment in the paper (Figs. 5-12, Table 1) sweeps a
:class:`~repro.opinions.state.StateSeries` through SND, and the §9
metric-space applications need all-pairs distance matrices. Since PR 3 the
actual machinery lives in two sibling modules:

* :mod:`repro.snd.cache` — the unified cache hierarchy
  (:class:`GroundCostCache` for Eq. 2 cost arrays,
  :class:`DijkstraRowCache` for per-source shortest-path rows,
  :class:`TransitionCache` for finished SND values, bundled by
  :class:`~repro.snd.cache.CacheManager` under one memory budget);
* :mod:`repro.snd.engine` — the persistent :class:`~repro.snd.engine.SNDEngine`
  (long-lived worker pool attached once to a shared-memory state matrix,
  incremental :class:`~repro.snd.engine.Corpus` extension, streaming).

:func:`evaluate_series` and :func:`pairwise_matrix` keep the historical
one-shot calling convention by wrapping a **transient** engine: one call,
one (optional) pool, same results. Long-lived workloads — repeated sweeps,
growing corpora, state streams — should hold an
:class:`~repro.snd.engine.SNDEngine` instead and amortise the pool startup
across calls.

The batched paths run the exact same per-term pipeline as
:meth:`repro.snd.snd.SND.evaluate` (same cost arrays, same solver, same
summation order), so results are bit-identical to the naive per-pair loop
— property-tested in ``tests/snd/test_batch.py``. ``SND(a, b) == SND(b, a)``
by construction (Eq. 3 is symmetric), so :func:`pairwise_matrix` evaluates
the upper triangle only and mirrors it.
"""

from __future__ import annotations

import numpy as np

from repro.opinions.state import StateSeries
from repro.snd.cache import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_ROW_CACHE_SIZE,
    DEFAULT_TRANSITION_CACHE_SIZE,
    CacheManager,
    DijkstraRowCache,
    GroundCostCache,
    TransitionCache,
)
from repro.snd.engine import (
    SNDEngine,
    _chunk_ranges,  # noqa: F401  (re-exported for tests / legacy imports)
    _missing_runs,  # noqa: F401
    _pair_distance,  # noqa: F401
)

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_ROW_CACHE_SIZE",
    "DEFAULT_TRANSITION_CACHE_SIZE",
    "GroundCostCache",
    "DijkstraRowCache",
    "TransitionCache",
    "CacheManager",
    "evaluate_series",
    "pairwise_matrix",
]


def _transient_engine(
    snd,
    *,
    jobs,
    executor: str,
    cache: GroundCostCache | None,
    row_cache: DijkstraRowCache | None,
    transitions: TransitionCache | None,
) -> SNDEngine:
    """One-call engine honouring the historical per-cache arguments.

    Caller-supplied caches are adopted into a fresh
    :class:`~repro.snd.cache.CacheManager` so their counters stay visible;
    a ``row_cache=None`` keeps the historical meaning "no row reuse for
    this call".
    """
    caches = CacheManager(
        ground=cache if cache is not None else GroundCostCache(DEFAULT_CACHE_SIZE),
        rows=row_cache if row_cache is not None else DijkstraRowCache(),
        transitions=transitions if transitions is not None else TransitionCache(),
        # Bases persist on the SND instance so repeated one-shot calls
        # warm-start each other and the counters stay on `--cache-stats`.
        bases=snd.caches.bases,
    )
    return SNDEngine(
        snd,
        jobs=jobs,
        executor=executor,
        caches=caches,
        use_row_cache=row_cache is not None,
    )


def evaluate_series(
    snd,
    series: StateSeries,
    *,
    jobs: int | None = None,
    cache: GroundCostCache | None = None,
    executor: str = "process",
    transitions: TransitionCache | None = None,
    row_cache: DijkstraRowCache | None = None,
    window: int | None = None,
) -> np.ndarray:
    """Adjacent-state distances ``d_t = SND(G_t, G_{t+1})``, batched.

    Serial (``jobs in (None, 0, 1)``): one sweep through *cache* — each
    state's two cost arrays are built once and reused by both transitions
    touching it (``2·(T-1) + 2`` builds total instead of ``4·(T-1)``).

    Parallel (``jobs >= 2``): transitions are split into contiguous chunks
    over the engine's pool. Process workers attach once to a
    shared-memory state matrix and keep private caches; thread workers
    share *cache* (and *row_cache*) directly. Chunk boundaries cost at
    most 2 extra builds each, so builds stay ``<= 2·(T-1) + 2·jobs``.

    *transitions* (optional :class:`TransitionCache`) memoises finished
    values across calls: cached transitions are answered before any worker
    dispatch, so a sweep over a window shifted by one state re-solves
    exactly one transition. *window* runs the whole series through
    overlapping length-*window* sub-sweeps sharing one transition cache —
    the incremental evaluation mode of the ROADMAP — and returns the same
    ``(T-1,)`` array as the from-scratch sweep.

    Values are bit-identical to ``[snd.distance(a, b) for a, b in
    series.transitions()]`` in every mode. This is a one-shot wrapper over
    :class:`~repro.snd.engine.SNDEngine`; hold an engine for repeated
    sweeps to keep its pool warm.
    """
    if window is not None and transitions is None:
        transitions = TransitionCache()
    with _transient_engine(
        snd,
        jobs=jobs,
        executor=executor,
        cache=cache,
        row_cache=row_cache,
        transitions=transitions,
    ) as engine:
        return engine.evaluate_series(series, transitions=transitions, window=window)


def pairwise_matrix(
    snd,
    states,
    *,
    jobs: int | None = None,
    cache: GroundCostCache | None = None,
    executor: str = "process",
    row_cache: DijkstraRowCache | None = None,
    transitions: TransitionCache | None = None,
) -> np.ndarray:
    """Symmetric ``(N, N)`` SND matrix over *states*, upper triangle only.

    Eq. 3 is symmetric by construction, so only the ``N·(N-1)/2`` pairs
    ``i < j`` are evaluated and mirrored; the diagonal is exactly 0. The
    ground cache is grown to capacity ``>= 2·N`` so each state's two cost
    arrays are built once (``2·N`` builds instead of ``4·N·(N-1)/2``).
    Pairs are grouped by row before chunking so worker caches keep the
    supplier side hot, and *row_cache* (optional) reuses per-source
    Dijkstra rows across the many pairs sharing a supplier state.
    *transitions* (optional) answers already-solved pairs before dispatch
    — the incremental-extension lever of
    :class:`~repro.snd.engine.Corpus`.

    *states* may be a :class:`StateSeries` or any sequence of
    :class:`NetworkState`; 0- and 1-state inputs yield the corresponding
    trivial (all-zero) matrix. One-shot wrapper over
    :class:`~repro.snd.engine.SNDEngine`.
    """
    states = list(states)
    if cache is None:
        cache = GroundCostCache(max(DEFAULT_CACHE_SIZE, 2 * len(states)))
    with _transient_engine(
        snd,
        jobs=jobs,
        executor=executor,
        cache=cache,
        row_cache=row_cache,
        transitions=transitions,
    ) as engine:
        return engine.pairwise_matrix(states, transitions=transitions)
