"""Batch SND evaluation: series sweeps, sliding windows, pairwise matrices.

Every experiment in the paper (Figs. 5-12, Table 1) sweeps a
:class:`~repro.opinions.state.StateSeries` through SND, and the §9
metric-space applications need all-pairs distance matrices. Evaluating each
pair from scratch wastes work three times over:

1. **Ground-cost rebuilds.** Eq. 3 needs the Eq. 2 edge costs of *both*
   states (one per polarity), and adjacent transitions share a state — the
   supplier-side costs of ``(G_t, G_{t+1})`` are rebuilt verbatim for
   ``(G_{t+1}, G_{t+2})``. :class:`GroundCostCache` memoises cost arrays
   under a ``(state fingerprint, opinion)`` key, cutting a series sweep
   from ``4·(T-1)`` builds to at most ``2·(T-1) + 2`` and a pairwise
   matrix over ``N`` states to ``2·N``.
2. **Shortest-path rebuilds.** The fast pipeline runs one Dijkstra per
   changed user, and rows depend only on ``(supplier state, opinion,
   direction, source)`` — terms of different transitions that share a
   supplier state re-run identical Dijkstras for every source that changed
   in both. :class:`DijkstraRowCache` memoises per-source rows under that
   key (rows are independent per source, so stitching cached and fresh
   rows is bit-identical to one batched run).
3. **Whole-transition rebuilds.** A sliding window shifted by one state
   shares all but one transition with the previous sweep.
   :class:`TransitionCache` memoises finished SND values under the ordered
   state-fingerprint pair, so windowed sweeps (``window=``) re-solve
   exactly one fresh transition per shift; its ``misses`` counter makes
   that testable.

Transitions (and pairs) are independent, so a ``jobs=`` fan-out distributes
contiguous chunks over a :mod:`concurrent.futures` pool. Process workers
receive the SND instance and the stacked state matrix **once** through the
pool initializer and keep private caches, so per-task payloads are just
index ranges; cached transitions are filtered out *before* dispatch, so
reuse works in every execution mode.

The batched paths run the exact same per-term pipeline as
:meth:`repro.snd.snd.SND.evaluate` (same cost arrays, same solver, same
summation order), so results are bit-identical to the naive per-pair loop
— property-tested in ``tests/snd/test_batch.py``. ``SND(a, b) == SND(b, a)``
by construction (Eq. 3 is symmetric), so :func:`pairwise_matrix` evaluates
the upper triangle only and mirrors it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.exceptions import ValidationError
from repro.opinions.state import NEGATIVE, POSITIVE, NetworkState, StateSeries

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_ROW_CACHE_SIZE",
    "DEFAULT_TRANSITION_CACHE_SIZE",
    "GroundCostCache",
    "DijkstraRowCache",
    "TransitionCache",
    "evaluate_series",
    "pairwise_matrix",
]

#: Default bound on cached cost arrays. A series sweep only ever has 4
#: entries live (two states x two polarities); pairwise callers size their
#: cache to ``2·N`` explicitly. 64 leaves room for sliding-window reuse
#: while bounding retained memory at ``64 · m`` floats.
DEFAULT_CACHE_SIZE = 64

#: Default bound on cached Dijkstra rows (one row = ``n`` floats; 256 rows
#: of a 2000-node graph retain ~4 MB).
DEFAULT_ROW_CACHE_SIZE = 256

#: Default bound on cached transition values. Entries are single floats
#: keyed by two fingerprints, so a large default is cheap and lets long
#: sliding-window sweeps reuse every previously solved transition.
DEFAULT_TRANSITION_CACHE_SIZE = 65536


class _LruCache:
    """Bounded thread-safe LRU shared by the three batch caches.

    ``hits`` / ``misses`` counters make reuse testable: ``misses`` equals
    the number of fresh computations performed through the cache. Pickling
    drops the entries and the lock (process-pool workers rebuild their own
    caches; shipping entries across the boundary defeats the point).
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValidationError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def _get(self, key):
        """Entry for *key* (counting a hit) or ``None`` (counting a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
            return entry

    def _put(self, key, value) -> None:
        with self._lock:
            self._entries[key] = value
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]  # locks cannot cross pickle; workers re-create
        state["_entries"] = OrderedDict()  # entries don't travel: workers
        return state  # rebuild their own, and shipping arrays defeats the point

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(size={len(self._entries)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class GroundCostCache(_LruCache):
    """Bounded LRU cache of Eq. 2 edge-cost arrays.

    Keys are ``(state fingerprint, opinion)`` where the fingerprint is the
    raw opinion-vector bytes — two states with equal opinions share an
    entry regardless of object identity. Values are the CSR-aligned cost
    arrays of :meth:`repro.snd.ground.GroundDistanceConfig.edge_costs`;
    they are treated as immutable once cached.

    The cache is thread-safe (one lock around lookups/inserts) so a thread
    fan-out can share a single instance; process workers each hold their
    own. ``misses`` equals the number of ground-cost builds performed.
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        super().__init__(maxsize)

    @staticmethod
    def fingerprint(state: NetworkState) -> bytes:
        """Content key for *state* (equal opinions => equal fingerprint)."""
        return state.values.tobytes()

    def edge_costs(self, ground, graph, state: NetworkState, opinion: int) -> np.ndarray:
        """Cached ``ground.edge_costs(graph, state, opinion)``."""
        key = (self.fingerprint(state), int(opinion))
        cached = self._get(key)
        if cached is not None:
            return cached
        costs = ground.edge_costs(graph, state, opinion)
        self._put(key, costs)
        return costs

    @property
    def builds(self) -> int:
        """Number of ground-cost arrays actually built (== misses)."""
        return self.misses


class DijkstraRowCache(_LruCache):
    """Bounded LRU cache of per-source shortest-path rows.

    A row is ``dist(source -> ·)`` (or ``dist(· -> source)`` when
    *reverse*) under one supplier-side cost array; the key is
    ``(cost_key, reverse, source)`` where ``cost_key`` is the ground-cost
    cache key ``(state fingerprint, opinion)``. Rows are independent per
    source, so a matrix stitched from cached and freshly computed rows is
    bit-identical to one batched :func:`multi_source_distances` call —
    which is what makes the cache safe for the exactness contract of the
    batch engine.
    """

    def __init__(self, maxsize: int = DEFAULT_ROW_CACHE_SIZE) -> None:
        super().__init__(maxsize)

    def distance_rows(
        self,
        graph,
        sources,
        edge_costs: np.ndarray,
        *,
        reverse: bool,
        engine: str,
        heap: str,
        cost_key,
    ) -> np.ndarray:
        """``multi_source_distances`` with per-source row memoisation."""
        from repro.shortestpath.dijkstra import multi_source_distances

        sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
        n = graph.num_nodes
        out = np.empty((sources.size, n), dtype=np.float64)
        missing: list[int] = []
        for i, s in enumerate(sources):
            row = self._get((cost_key, bool(reverse), int(s)))
            if row is None:
                missing.append(i)
            else:
                out[i] = row
        if missing:
            fresh = multi_source_distances(
                graph,
                sources[missing],
                weights=edge_costs,
                engine=engine,
                heap=heap,
                reverse=reverse,
            )
            for k, i in enumerate(missing):
                out[i] = fresh[k]
                row = fresh[k].copy()
                row.setflags(write=False)
                self._put((cost_key, bool(reverse), int(sources[i])), row)
        return out


class TransitionCache(_LruCache):
    """Bounded LRU cache of finished SND transition values.

    Keys are the *ordered* fingerprint pair of the two states (Eq. 3 is
    symmetric, but term summation order differs under a swap, so the
    ordered key preserves the bit-identical contract); values are floats.
    ``misses`` counts fresh transitions actually solved — a sliding window
    shifted by one state shows exactly one miss per shift.
    """

    def __init__(self, maxsize: int = DEFAULT_TRANSITION_CACHE_SIZE) -> None:
        super().__init__(maxsize)

    @staticmethod
    def key(a: NetworkState, b: NetworkState) -> tuple[bytes, bytes]:
        return (GroundCostCache.fingerprint(a), GroundCostCache.fingerprint(b))

    def get(self, a: NetworkState, b: NetworkState) -> float | None:
        """Cached distance for the ordered pair, or ``None`` (counts the
        miss — the caller is expected to solve and :meth:`put` it)."""
        return self._get(self.key(a, b))

    def put(self, a: NetworkState, b: NetworkState, value: float) -> None:
        self._put(self.key(a, b), float(value))

    @property
    def fresh(self) -> int:
        """Number of transitions actually solved (== misses)."""
        return self.misses

    @property
    def reused(self) -> int:
        """Number of transitions answered from the cache (== hits)."""
        return self.hits


# --------------------------------------------------------------------- #
# Single-pair evaluation through the caches
# --------------------------------------------------------------------- #


def _pair_distance(
    snd,
    a: NetworkState,
    b: NetworkState,
    cache: GroundCostCache,
    row_cache: DijkstraRowCache | None = None,
) -> float:
    """One Eq. 3 evaluation with ground costs drawn from *cache*.

    Term order and summation match :meth:`SND.evaluate` exactly so the
    result is bit-identical to the unbatched path; *row_cache* (optional)
    additionally reuses per-source Dijkstra rows across terms, which is
    value-preserving (rows are per-source deterministic).
    """
    ground, graph = snd.ground, snd.graph
    key_a, key_b = GroundCostCache.fingerprint(a), GroundCostCache.fingerprint(b)
    terms = (
        snd.term(
            a, b, POSITIVE,
            edge_costs=cache.edge_costs(ground, graph, a, POSITIVE),
            row_cache=row_cache, cost_key=(key_a, POSITIVE),
        ),
        snd.term(
            a, b, NEGATIVE,
            edge_costs=cache.edge_costs(ground, graph, a, NEGATIVE),
            row_cache=row_cache, cost_key=(key_a, NEGATIVE),
        ),
        snd.term(
            b, a, POSITIVE,
            edge_costs=cache.edge_costs(ground, graph, b, POSITIVE),
            row_cache=row_cache, cost_key=(key_b, POSITIVE),
        ),
        snd.term(
            b, a, NEGATIVE,
            edge_costs=cache.edge_costs(ground, graph, b, NEGATIVE),
            row_cache=row_cache, cost_key=(key_b, NEGATIVE),
        ),
    )
    return 0.5 * sum(terms)


# --------------------------------------------------------------------- #
# Process-pool plumbing
# --------------------------------------------------------------------- #

# Worker-global context, set once per process by the pool initializer so
# per-task payloads are bare index ranges (the SND instance and the state
# matrix cross the process boundary exactly once).
_WORKER: dict = {}


def _init_worker(snd, matrix: np.ndarray, cache_size: int, row_cache_size: int = 0) -> None:
    _WORKER["snd"] = snd
    _WORKER["states"] = [NetworkState(row) for row in matrix]
    _WORKER["cache"] = GroundCostCache(cache_size)
    _WORKER["row_cache"] = (
        DijkstraRowCache(row_cache_size) if row_cache_size else None
    )


def _series_chunk_worker(start: int, stop: int) -> tuple[int, list[float]]:
    """Distances for transitions ``start .. stop-1`` (contiguous, so the
    worker cache gets the same adjacent-state reuse as the serial sweep)."""
    snd, states, cache = _WORKER["snd"], _WORKER["states"], _WORKER["cache"]
    row_cache = _WORKER.get("row_cache")
    out = [
        _pair_distance(snd, states[t], states[t + 1], cache, row_cache)
        for t in range(start, stop)
    ]
    return start, out


def _pairwise_chunk_worker(pairs: list[tuple[int, int]]) -> list[float]:
    """Distances for explicit ``(i, j)`` pairs (grouped by row upstream so
    the supplier-side cost arrays stay hot in the worker cache)."""
    snd, states, cache = _WORKER["snd"], _WORKER["states"], _WORKER["cache"]
    row_cache = _WORKER.get("row_cache")
    return [
        _pair_distance(snd, states[i], states[j], cache, row_cache) for i, j in pairs
    ]


def _chunk_ranges(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
    """Split ``0..n_items`` into at most *n_chunks* contiguous ranges.

    Degenerate inputs are handled explicitly: ``n_items <= 0`` yields no
    ranges, and ``n_chunks`` is clamped to ``1..n_items`` (asking for more
    chunks than items never produces empty ranges).
    """
    if n_items <= 0:
        return []
    n_chunks = max(1, min(int(n_chunks), n_items))
    bounds = np.linspace(0, n_items, n_chunks + 1).astype(int)
    return [(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:]) if b > a]


def _missing_runs(missing: list[int], jobs: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` runs over *missing* (sorted indices),
    with long runs split so the task count roughly matches *jobs*."""
    runs: list[tuple[int, int]] = []
    i = 0
    while i < len(missing):
        j = i
        while j + 1 < len(missing) and missing[j + 1] == missing[j] + 1:
            j += 1
        runs.append((missing[i], missing[j] + 1))
        i = j + 1
    target = max(1, -(-len(missing) // max(1, jobs)))  # ceil division
    tasks: list[tuple[int, int]] = []
    for start, stop in runs:
        for a, b in _chunk_ranges(stop - start, -(-(stop - start) // target)):
            tasks.append((start + a, start + b))
    return tasks


def _resolve_executor(executor: str):
    if executor == "process":
        return ProcessPoolExecutor
    if executor == "thread":
        return ThreadPoolExecutor
    raise ValidationError(
        f"executor must be 'process' or 'thread', got {executor!r}"
    )


# --------------------------------------------------------------------- #
# Public batch APIs
# --------------------------------------------------------------------- #


def evaluate_series(
    snd,
    series: StateSeries,
    *,
    jobs: int | None = None,
    cache: GroundCostCache | None = None,
    executor: str = "process",
    transitions: TransitionCache | None = None,
    row_cache: DijkstraRowCache | None = None,
    window: int | None = None,
) -> np.ndarray:
    """Adjacent-state distances ``d_t = SND(G_t, G_{t+1})``, batched.

    Serial (``jobs in (None, 0, 1)``): one sweep through *cache* — each
    state's two cost arrays are built once and reused by both transitions
    touching it (``2·(T-1) + 2`` builds total instead of ``4·(T-1)``).

    Parallel (``jobs >= 2``): transitions are split into contiguous chunks
    over a :mod:`concurrent.futures` pool. Process workers receive
    ``(snd, state matrix)`` once via the pool initializer and keep private
    caches; thread workers share *cache* (and *row_cache*) directly. Chunk
    boundaries cost at most 2 extra builds each, so builds stay
    ``<= 2·(T-1) + 2·jobs``.

    *transitions* (optional :class:`TransitionCache`) memoises finished
    values across calls: cached transitions are answered before any worker
    dispatch, so a sweep over a window shifted by one state re-solves
    exactly one transition. *window* runs the whole series through
    overlapping length-*window* sub-sweeps sharing one transition cache —
    the incremental evaluation mode of the ROADMAP — and returns the same
    ``(T-1,)`` array as the from-scratch sweep.

    Values are bit-identical to ``[snd.distance(a, b) for a, b in
    series.transitions()]`` in every mode.
    """
    n_transitions = len(series) - 1
    if n_transitions <= 0:
        return np.empty(0, dtype=np.float64)
    if cache is None:
        cache = GroundCostCache(DEFAULT_CACHE_SIZE)

    if window is not None:
        if window < 2:
            raise ValidationError(
                f"window must span at least one transition (>= 2 states), "
                f"got {window}"
            )
        if transitions is None:
            transitions = TransitionCache()
        window = min(int(window), len(series))
        out = np.empty(n_transitions, dtype=np.float64)
        for start in range(0, len(series) - window + 1):
            vals = evaluate_series(
                snd,
                series[start : start + window],
                jobs=jobs,
                cache=cache,
                executor=executor,
                transitions=transitions,
                row_cache=row_cache,
            )
            out[start : start + window - 1] = vals
        return out

    out = np.empty(n_transitions, dtype=np.float64)
    if transitions is not None:
        missing: list[int] = []
        states = list(series)
        for t in range(n_transitions):
            cached_value = transitions.get(states[t], states[t + 1])
            if cached_value is None:
                missing.append(t)
            else:
                out[t] = cached_value
        if not missing:
            return out
    else:
        missing = list(range(n_transitions))

    if jobs is None or jobs <= 1 or len(missing) == 1:
        for t in missing:
            out[t] = _pair_distance(snd, series[t], series[t + 1], cache, row_cache)
            if transitions is not None:
                transitions.put(series[t], series[t + 1], out[t])
        return out

    pool_cls = _resolve_executor(executor)
    tasks = _missing_runs(missing, int(jobs))
    if pool_cls is ThreadPoolExecutor:
        # Threads share the caller-visible caches; no initializer needed.
        def run(start: int, stop: int) -> tuple[int, list[float]]:
            vals = [
                _pair_distance(snd, series[t], series[t + 1], cache, row_cache)
                for t in range(start, stop)
            ]
            return start, vals

        with ThreadPoolExecutor(max_workers=min(len(tasks), int(jobs))) as pool:
            for start, vals in pool.map(lambda r: run(*r), tasks):
                out[start : start + len(vals)] = vals
    else:
        matrix = series.to_matrix()
        row_cache_size = row_cache.maxsize if row_cache is not None else 0
        with ProcessPoolExecutor(
            max_workers=min(len(tasks), int(jobs)),
            initializer=_init_worker,
            initargs=(snd, matrix, cache.maxsize, row_cache_size),
        ) as pool:
            for start, vals in pool.map(_series_chunk_worker, *zip(*tasks)):
                out[start : start + len(vals)] = vals
    if transitions is not None:
        for t in missing:
            transitions.put(series[t], series[t + 1], out[t])
    return out


def pairwise_matrix(
    snd,
    states,
    *,
    jobs: int | None = None,
    cache: GroundCostCache | None = None,
    executor: str = "process",
    row_cache: DijkstraRowCache | None = None,
) -> np.ndarray:
    """Symmetric ``(N, N)`` SND matrix over *states*, upper triangle only.

    Eq. 3 is symmetric by construction, so only the ``N·(N-1)/2`` pairs
    ``i < j`` are evaluated and mirrored; the diagonal is exactly 0. With
    a cache of capacity ``>= 2·N`` each state's two cost arrays are built
    once (``2·N`` builds instead of ``4·N·(N-1)/2``). Pairs are grouped by
    row before chunking so worker caches keep the supplier side hot, and
    *row_cache* (optional) reuses per-source Dijkstra rows across the many
    pairs sharing a supplier state.

    *states* may be a :class:`StateSeries` or any sequence of
    :class:`NetworkState`; 0- and 1-state inputs yield the corresponding
    trivial (all-zero) matrix.
    """
    states = list(states)
    n = len(states)
    out = np.zeros((n, n), dtype=np.float64)
    if n < 2:
        return out
    if cache is None:
        cache = GroundCostCache(max(DEFAULT_CACHE_SIZE, 2 * n))

    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]

    if jobs is None or jobs <= 1 or len(pairs) == 1:
        for i, j in pairs:
            out[i, j] = out[j, i] = _pair_distance(
                snd, states[i], states[j], cache, row_cache
            )
        return out

    pool_cls = _resolve_executor(executor)
    ranges = _chunk_ranges(len(pairs), int(jobs))
    chunks = [pairs[a:b] for a, b in ranges]
    if pool_cls is ThreadPoolExecutor:
        def run(chunk: list[tuple[int, int]]) -> list[float]:
            return [
                _pair_distance(snd, states[i], states[j], cache, row_cache)
                for i, j in chunk
            ]

        with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
            results = list(pool.map(run, chunks))
    else:
        matrix = np.vstack([s.values for s in states])
        row_cache_size = row_cache.maxsize if row_cache is not None else 0
        with ProcessPoolExecutor(
            max_workers=len(chunks),
            initializer=_init_worker,
            initargs=(snd, matrix, max(cache.maxsize, 2 * n), row_cache_size),
        ) as pool:
            results = list(pool.map(_pairwise_chunk_worker, chunks))

    for chunk, values in zip(chunks, results):
        for (i, j), v in zip(chunk, values):
            out[i, j] = out[j, i] = v
    return out
