"""Batch SND evaluation: series sweeps, pairwise matrices, parallel fan-out.

Every experiment in the paper (Figs. 5-12, Table 1) sweeps a
:class:`~repro.opinions.state.StateSeries` through SND, and the §9
metric-space applications need all-pairs distance matrices. Evaluating each
pair from scratch wastes work twice over:

1. **Ground-cost rebuilds.** Eq. 3 needs the Eq. 2 edge costs of *both*
   states (one per polarity), and adjacent transitions share a state — the
   supplier-side costs of ``(G_t, G_{t+1})`` are rebuilt verbatim for
   ``(G_{t+1}, G_{t+2})``. :class:`GroundCostCache` memoises cost arrays
   under a ``(state fingerprint, opinion)`` key, cutting a series sweep
   from ``4·(T-1)`` builds to at most ``2·(T-1) + 2`` and a pairwise
   matrix over ``N`` states to ``2·N``.
2. **Serial evaluation.** Transitions (and pairs) are independent, so a
   ``jobs=`` fan-out distributes contiguous chunks over a
   :mod:`concurrent.futures` pool. Process workers receive the SND
   instance and the stacked state matrix **once** through the pool
   initializer and keep a private :class:`GroundCostCache`, so per-task
   payloads are just index ranges.

The batched paths run the exact same per-term pipeline as
:meth:`repro.snd.snd.SND.evaluate` (same cost arrays, same solver, same
summation order), so results are bit-identical to the naive per-pair loop
— property-tested in ``tests/snd/test_batch.py``. ``SND(a, b) == SND(b, a)``
by construction (Eq. 3 is symmetric), so :func:`pairwise_matrix` evaluates
the upper triangle only and mirrors it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.exceptions import ValidationError
from repro.opinions.state import NEGATIVE, POSITIVE, NetworkState, StateSeries

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "GroundCostCache",
    "evaluate_series",
    "pairwise_matrix",
]

#: Default bound on cached cost arrays. A series sweep only ever has 4
#: entries live (two states x two polarities); pairwise callers size their
#: cache to ``2·N`` explicitly. 64 leaves room for sliding-window reuse
#: while bounding retained memory at ``64 · m`` floats.
DEFAULT_CACHE_SIZE = 64


class GroundCostCache:
    """Bounded LRU cache of Eq. 2 edge-cost arrays.

    Keys are ``(state fingerprint, opinion)`` where the fingerprint is the
    raw opinion-vector bytes — two states with equal opinions share an
    entry regardless of object identity. Values are the CSR-aligned cost
    arrays of :meth:`repro.snd.ground.GroundDistanceConfig.edge_costs`;
    they are treated as immutable once cached.

    The cache is thread-safe (one lock around lookups/inserts) so a thread
    fan-out can share a single instance; process workers each hold their
    own. ``hits`` / ``misses`` counters make cache effectiveness testable:
    ``misses`` equals the number of ground-cost builds performed.
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        if maxsize < 1:
            raise ValidationError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._entries: OrderedDict[tuple[bytes, int], np.ndarray] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def fingerprint(state: NetworkState) -> bytes:
        """Content key for *state* (equal opinions => equal fingerprint)."""
        return state.values.tobytes()

    def edge_costs(self, ground, graph, state: NetworkState, opinion: int) -> np.ndarray:
        """Cached ``ground.edge_costs(graph, state, opinion)``."""
        key = (self.fingerprint(state), int(opinion))
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
        costs = ground.edge_costs(graph, state, opinion)
        with self._lock:
            self.misses += 1
            self._entries[key] = costs
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return costs

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def builds(self) -> int:
        """Number of ground-cost arrays actually built (== misses)."""
        return self.misses

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]  # locks cannot cross pickle; workers re-create
        state["_entries"] = OrderedDict()  # entries don't travel: workers
        return state  # rebuild their own, and shipping arrays defeats the point

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GroundCostCache(size={len(self._entries)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )


# --------------------------------------------------------------------- #
# Single-pair evaluation through the cache
# --------------------------------------------------------------------- #


def _pair_distance(snd, a: NetworkState, b: NetworkState, cache: GroundCostCache) -> float:
    """One Eq. 3 evaluation with ground costs drawn from *cache*.

    Term order and summation match :meth:`SND.evaluate` exactly so the
    result is bit-identical to the unbatched path.
    """
    ground, graph = snd.ground, snd.graph
    terms = (
        snd.term(a, b, POSITIVE, edge_costs=cache.edge_costs(ground, graph, a, POSITIVE)),
        snd.term(a, b, NEGATIVE, edge_costs=cache.edge_costs(ground, graph, a, NEGATIVE)),
        snd.term(b, a, POSITIVE, edge_costs=cache.edge_costs(ground, graph, b, POSITIVE)),
        snd.term(b, a, NEGATIVE, edge_costs=cache.edge_costs(ground, graph, b, NEGATIVE)),
    )
    return 0.5 * sum(terms)


# --------------------------------------------------------------------- #
# Process-pool plumbing
# --------------------------------------------------------------------- #

# Worker-global context, set once per process by the pool initializer so
# per-task payloads are bare index ranges (the SND instance and the state
# matrix cross the process boundary exactly once).
_WORKER: dict = {}


def _init_worker(snd, matrix: np.ndarray, cache_size: int) -> None:
    _WORKER["snd"] = snd
    _WORKER["states"] = [NetworkState(row) for row in matrix]
    _WORKER["cache"] = GroundCostCache(cache_size)


def _series_chunk_worker(start: int, stop: int) -> tuple[int, list[float]]:
    """Distances for transitions ``start .. stop-1`` (contiguous, so the
    worker cache gets the same adjacent-state reuse as the serial sweep)."""
    snd, states, cache = _WORKER["snd"], _WORKER["states"], _WORKER["cache"]
    out = [
        _pair_distance(snd, states[t], states[t + 1], cache) for t in range(start, stop)
    ]
    return start, out


def _pairwise_chunk_worker(pairs: list[tuple[int, int]]) -> list[float]:
    """Distances for explicit ``(i, j)`` pairs (grouped by row upstream so
    the supplier-side cost arrays stay hot in the worker cache)."""
    snd, states, cache = _WORKER["snd"], _WORKER["states"], _WORKER["cache"]
    return [_pair_distance(snd, states[i], states[j], cache) for i, j in pairs]


def _chunk_ranges(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
    """Split ``0..n_items`` into at most *n_chunks* contiguous ranges."""
    n_chunks = max(1, min(n_chunks, n_items))
    bounds = np.linspace(0, n_items, n_chunks + 1).astype(int)
    return [(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:]) if b > a]


def _resolve_executor(executor: str):
    if executor == "process":
        return ProcessPoolExecutor
    if executor == "thread":
        return ThreadPoolExecutor
    raise ValidationError(
        f"executor must be 'process' or 'thread', got {executor!r}"
    )


# --------------------------------------------------------------------- #
# Public batch APIs
# --------------------------------------------------------------------- #


def evaluate_series(
    snd,
    series: StateSeries,
    *,
    jobs: int | None = None,
    cache: GroundCostCache | None = None,
    executor: str = "process",
) -> np.ndarray:
    """Adjacent-state distances ``d_t = SND(G_t, G_{t+1})``, batched.

    Serial (``jobs in (None, 0, 1)``): one sweep through *cache* — each
    state's two cost arrays are built once and reused by both transitions
    touching it (``2·(T-1) + 2`` builds total instead of ``4·(T-1)``).

    Parallel (``jobs >= 2``): transitions are split into *jobs* contiguous
    chunks over a :mod:`concurrent.futures` pool. Process workers receive
    ``(snd, state matrix)`` once via the pool initializer and keep private
    caches; thread workers share *cache* directly. Chunk boundaries cost
    at most 2 extra builds each, so builds stay ``<= 2·(T-1) + 2·jobs``.

    Values are bit-identical to ``[snd.distance(a, b) for a, b in
    series.transitions()]`` in every mode.
    """
    n_transitions = len(series) - 1
    if n_transitions <= 0:
        return np.empty(0, dtype=np.float64)
    if cache is None:
        cache = GroundCostCache(DEFAULT_CACHE_SIZE)

    if jobs is None or jobs <= 1 or n_transitions == 1:
        out = np.empty(n_transitions, dtype=np.float64)
        for t, (a, b) in enumerate(series.transitions()):
            out[t] = _pair_distance(snd, a, b, cache)
        return out

    pool_cls = _resolve_executor(executor)
    ranges = _chunk_ranges(n_transitions, int(jobs))
    out = np.empty(n_transitions, dtype=np.float64)
    if pool_cls is ThreadPoolExecutor:
        # Threads share the caller-visible cache; no initializer needed.
        def run(start: int, stop: int) -> tuple[int, list[float]]:
            vals = [
                _pair_distance(snd, series[t], series[t + 1], cache)
                for t in range(start, stop)
            ]
            return start, vals

        with ThreadPoolExecutor(max_workers=len(ranges)) as pool:
            for start, vals in pool.map(lambda r: run(*r), ranges):
                out[start : start + len(vals)] = vals
        return out

    matrix = series.to_matrix()
    with ProcessPoolExecutor(
        max_workers=len(ranges),
        initializer=_init_worker,
        initargs=(snd, matrix, cache.maxsize),
    ) as pool:
        for start, vals in pool.map(_series_chunk_worker, *zip(*ranges)):
            out[start : start + len(vals)] = vals
    return out


def pairwise_matrix(
    snd,
    states,
    *,
    jobs: int | None = None,
    cache: GroundCostCache | None = None,
    executor: str = "process",
) -> np.ndarray:
    """Symmetric ``(N, N)`` SND matrix over *states*, upper triangle only.

    Eq. 3 is symmetric by construction, so only the ``N·(N-1)/2`` pairs
    ``i < j`` are evaluated and mirrored; the diagonal is exactly 0. With
    a cache of capacity ``>= 2·N`` each state's two cost arrays are built
    once (``2·N`` builds instead of ``4·N·(N-1)/2``). Pairs are grouped by
    row before chunking so worker caches keep the supplier side hot.

    *states* may be a :class:`StateSeries` or any sequence of
    :class:`NetworkState`.
    """
    states = list(states)
    n = len(states)
    out = np.zeros((n, n), dtype=np.float64)
    if n < 2:
        return out
    if cache is None:
        cache = GroundCostCache(max(DEFAULT_CACHE_SIZE, 2 * n))

    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]

    if jobs is None or jobs <= 1 or len(pairs) == 1:
        for i, j in pairs:
            out[i, j] = out[j, i] = _pair_distance(snd, states[i], states[j], cache)
        return out

    pool_cls = _resolve_executor(executor)
    ranges = _chunk_ranges(len(pairs), int(jobs))
    chunks = [pairs[a:b] for a, b in ranges]
    if pool_cls is ThreadPoolExecutor:
        def run(chunk: list[tuple[int, int]]) -> list[float]:
            return [_pair_distance(snd, states[i], states[j], cache) for i, j in chunk]

        with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
            results = list(pool.map(run, chunks))
    else:
        matrix = np.vstack([s.values for s in states])
        with ProcessPoolExecutor(
            max_workers=len(chunks),
            initializer=_init_worker,
            initargs=(snd, matrix, max(cache.maxsize, 2 * n)),
        ) as pool:
            results = list(pool.map(_pairwise_chunk_worker, chunks))

    for chunk, values in zip(chunks, results):
        for (i, j), v in zip(chunk, values):
            out[i, j] = out[j, i] = v
    return out
