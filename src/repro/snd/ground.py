"""Ground-distance construction (Eq. 2) and Assumption-2 quantization.

The ground distance ``D(G_i, op)`` is the shortest-path matrix of the
network under per-edge costs

.. math::
   A_{ext}(G_i, op)_{uv} = -\\log P_{uv} - \\log P^{in}_{uv}
                           - \\log P^{out}_{uv}(G_i, op)

* ``-log P`` — communication penalty. Default: 1 per edge (the connectivity
  matrix), i.e. a pure topological-remoteness penalty; callers with
  communication-frequency data pass per-edge penalties.
* ``-log P_in`` — adoption penalty from the receiver's stubbornness.
  Default: 0 (every user equally receptive), matching the paper's default
  ``P^in_uv = 1``; callers pass per-node susceptibility penalties.
* ``-log P_out`` — spreading penalty from the chosen opinion model.

Assumption 2 requires edge costs to be positive integers bounded by a
constant ``U``; :func:`quantize_costs` maps arbitrary non-negative real
costs onto ``{1..U}``, preserving ratios up to rounding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import GroundDistanceError, QuantizationError
from repro.graph.digraph import DiGraph
from repro.opinions.models.base import OpinionModel
from repro.opinions.state import NetworkState

__all__ = [
    "DEFAULT_MAX_COST",
    "GroundDistanceConfig",
    "build_edge_costs",
    "quantize_costs",
    "unreachable_cost",
]

#: Default Assumption-2 bound ``U`` on integer edge costs.
DEFAULT_MAX_COST = 64


def quantize_costs(costs: np.ndarray, *, max_cost: int = DEFAULT_MAX_COST) -> np.ndarray:
    """Map non-negative real costs onto positive integers ``<= max_cost``.

    Costs that are already non-negative integers within the bound pass
    through unchanged, except that zero entries are floored to 1 (Assumption
    2 demands *positive* integers; rescaling the whole array because of one
    zero would distort every other integer cost). Otherwise costs are scaled
    so the maximum lands on ``max_cost``, rounded, and floored at 1.
    Relative cost structure is preserved up to the integer resolution — the
    "appropriate choice of costs" Assumption 2 alludes to.
    """
    costs = np.asarray(costs, dtype=np.float64)
    if costs.size == 0:
        return costs.astype(np.int64)
    if not np.all(np.isfinite(costs)):
        raise QuantizationError("edge costs must be finite before quantization")
    if costs.min() < 0:
        raise QuantizationError(f"edge costs must be non-negative, min={costs.min()}")
    if max_cost < 1:
        raise QuantizationError(f"max_cost must be >= 1, got {max_cost}")
    rounded = np.rint(costs)
    if np.allclose(costs, rounded) and rounded.max() <= max_cost:
        return np.maximum(rounded, 1).astype(np.int64)
    peak = costs.max()
    if peak <= 0:
        return np.ones(costs.shape, dtype=np.int64)
    scaled = costs * (max_cost / peak)
    return np.maximum(1, np.rint(scaled)).astype(np.int64)


def unreachable_cost(n_nodes: int, max_cost: int) -> float:
    """Finite stand-in for infinite shortest-path distances.

    Any finite path costs at most ``U * (n - 1)``, so ``U * n`` is strictly
    larger than every reachable distance while keeping the clamped matrix a
    semimetric (see DESIGN.md).
    """
    return float(max_cost) * max(n_nodes, 1)


@dataclass(frozen=True)
class GroundDistanceConfig:
    """Everything needed to turn (graph, state, opinion) into edge costs.

    Attributes
    ----------
    model:
        The opinion model supplying ``-log Pout``.
    communication_penalties:
        Per-edge ``-log P`` (CSR-aligned), or ``None`` for the connectivity
        default of 1 per edge.
    adoption_penalties:
        Per-node ``-log Pin`` applied to each edge's *target*, or ``None``
        for the non-stubborn default of 0.
    max_cost:
        Assumption-2 bound ``U``; set ``quantize=False`` to skip integer
        quantization (disables the radix-heap fast path).
    """

    model: OpinionModel
    communication_penalties: np.ndarray | None = None
    adoption_penalties: np.ndarray | None = None
    max_cost: int = DEFAULT_MAX_COST
    quantize: bool = True
    extra: dict = field(default_factory=dict)

    def edge_costs(self, graph: DiGraph, state: NetworkState, opinion: int) -> np.ndarray:
        """Per-edge ground costs ``A_ext(state, opinion)`` (CSR-aligned)."""
        return build_edge_costs(
            graph,
            state,
            opinion,
            self.model,
            communication_penalties=self.communication_penalties,
            adoption_penalties=self.adoption_penalties,
            max_cost=self.max_cost,
            quantize=self.quantize,
        )


def build_edge_costs(
    graph: DiGraph,
    state: NetworkState,
    opinion: int,
    model: OpinionModel,
    *,
    communication_penalties: np.ndarray | None = None,
    adoption_penalties: np.ndarray | None = None,
    max_cost: int = DEFAULT_MAX_COST,
    quantize: bool = True,
) -> np.ndarray:
    """Assemble Eq. 2 for one (state, opinion) pair.

    Returns a CSR-aligned cost array; integer-valued (as float64) when
    *quantize* is set.
    """
    if state.n != graph.num_nodes:
        raise GroundDistanceError(
            f"state has {state.n} users but graph has {graph.num_nodes}"
        )
    m = graph.num_edges

    if communication_penalties is None:
        comm = np.ones(m)
    else:
        comm = np.asarray(communication_penalties, dtype=np.float64)
        if comm.shape != graph.indices.shape:
            raise GroundDistanceError(
                f"communication penalties must align with the {m} edges"
            )

    if adoption_penalties is None:
        adopt = np.zeros(m)
    else:
        per_node = np.asarray(adoption_penalties, dtype=np.float64)
        if per_node.shape != (graph.num_nodes,):
            raise GroundDistanceError(
                f"adoption penalties must have one entry per node ({graph.num_nodes})"
            )
        adopt = per_node[graph.indices]

    spread = model.spreading_penalties(graph, state, opinion)
    if spread.shape != graph.indices.shape:
        raise GroundDistanceError(
            f"{model.name}: spreading penalties misaligned with edges"
        )

    costs = comm + adopt + spread
    if costs.size and costs.min() < 0:
        raise GroundDistanceError("combined edge costs must be non-negative")
    if quantize:
        return quantize_costs(costs, max_cost=max_cost).astype(np.float64)
    return costs
