"""The engine scheduling layer: request queueing, dedup, and coalescing.

The serving workloads the paper motivates — anomaly monitoring over live
network states (§6.2), metric-space queries against growing corpora (§9) —
hit the SND stack with *many concurrent, heavily duplicated* pair
requests.  Before this module, every entry point
(:meth:`~repro.snd.engine.SNDEngine.evaluate_series`,
:meth:`~repro.snd.engine.SNDEngine.pairwise_matrix`, streaming, the batch
wrappers) carried its own copy of the request plumbing: probe the
:class:`~repro.snd.cache.TransitionCache`, partition the missing pairs
into chunks, dispatch to the pool, fill the cache back in.

:class:`PairScheduler` extracts that plumbing into one layer that every
client shares:

* **Dedup against the transition cache** — each requested pair is probed
  against the (optional) :class:`~repro.snd.cache.TransitionCache` before
  any dispatch, preserving the cache's historical hit/miss ("fresh")
  counter semantics exactly.
* **Coalescing** — concurrent requests for the same (fingerprint-ordered)
  pair share one solve: requests arriving while a pair is in flight
  attach to the existing solve instead of re-dispatching it, and
  duplicate pairs inside one batch are solved once.  The ``coalesced`` /
  ``solved`` counters make this assertable the same way ``pool_starts``
  makes pool persistence assertable.
* **Batched chunk submission** — admitted pairs are split into contiguous
  chunks (:func:`_chunk_ranges`) and submitted to the engine's persistent
  pool; pool dispatch is serialized so concurrent clients can never race
  each other's rows in the shared-memory state matrix.
* **Bounded queue with backpressure** — at most ``max_pending`` unique
  pairs may be admitted (queued-or-solving) at once.  Further admissions
  block until solves release slots, fail fast (``block=False``), or time
  out — both failure modes raise
  :class:`~repro.exceptions.SchedulerSaturatedError`, which the serve
  tier maps to HTTP 503.

Exactness contract: the scheduler changes *when* and *how often* pairs
are solved, never *how* — every solve runs the engine's unchanged
per-pair pipeline, so values are bit-identical to the naive loop, and
coalesced requests receive the exact float the single solve produced.
Warm-start locality rides the same dispatch path for free: each
dispatched pair runs through the engine's shared
:class:`~repro.snd.cache.BasisCache`, so a pair temporally adjacent to an
earlier one (window shift, corpus append, the reverse terms of the same
pair) reuses its optimal spanning-tree basis inside the network-simplex
solver — contiguous chunking keeps those related pairs on the same
worker, where the per-process basis store can see them.
"""

from __future__ import annotations

import os
import threading
from typing import Sequence

import numpy as np

from repro.exceptions import (
    ClientSaturatedError,
    SchedulerSaturatedError,
    ValidationError,
)
from repro.opinions.state import NetworkState
from repro.snd.cache import TransitionCache

__all__ = [
    "DEFAULT_MAX_PENDING",
    "PRIORITY_WEIGHTS",
    "PairScheduler",
    "resolve_jobs",
]

#: Default bound on unique pairs admitted (queued or solving) at once.
#: Large enough that one-shot batch sweeps (series, moderate matrices)
#: fit in a single admission slice; small enough to bound memory and give
#: the serve tier a meaningful saturation signal.
DEFAULT_MAX_PENDING = 4096

#: Priority classes for per-client admission: the multiplier applied to
#: ``client_max_pending`` when computing a client's effective quota.
#: ``high`` clients may hold twice the base quota, ``low`` half (never
#: below 1); the global ``max_pending`` bound applies on top regardless.
PRIORITY_WEIGHTS: dict[str, float] = {"low": 0.5, "normal": 1.0, "high": 2.0}


# --------------------------------------------------------------------- #
# Work partitioning (extracted from the engine)
# --------------------------------------------------------------------- #


def _chunk_ranges(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
    """Split ``0..n_items`` into at most *n_chunks* contiguous ranges.

    Degenerate inputs are handled explicitly: ``n_items <= 0`` yields no
    ranges, and ``n_chunks`` is clamped to ``1..n_items`` (asking for more
    chunks than items never produces empty ranges).
    """
    if n_items <= 0:
        return []
    n_chunks = max(1, min(int(n_chunks), n_items))
    bounds = np.linspace(0, n_items, n_chunks + 1).astype(int)
    return [(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:]) if b > a]


def _missing_runs(missing: list[int], jobs: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` runs over *missing* (sorted indices),
    with long runs split so the task count roughly matches *jobs*."""
    runs: list[tuple[int, int]] = []
    i = 0
    while i < len(missing):
        j = i
        while j + 1 < len(missing) and missing[j + 1] == missing[j] + 1:
            j += 1
        runs.append((missing[i], missing[j] + 1))
        i = j + 1
    target = max(1, -(-len(missing) // max(1, jobs)))  # ceil division
    tasks: list[tuple[int, int]] = []
    for start, stop in runs:
        for a, b in _chunk_ranges(stop - start, -(-(stop - start) // target)):
            tasks.append((start + a, start + b))
    return tasks


def resolve_jobs(jobs) -> int:
    """Normalise a ``jobs`` request to a worker count.

    ``"auto"`` sizes to the host: serial on single-CPU machines (where
    pool startup can only lose) and ``min(4, cpu_count)`` otherwise.
    ``None`` means serial.  Anything else must be a positive integer —
    ``0``, negative, and non-integer values are rejected here with a
    clear error instead of falling through to opaque pool-construction
    failures (``ProcessPoolExecutor(max_workers=0)`` raises a bare
    ``ValueError`` with no hint about which argument was wrong).
    """
    if jobs is None:
        return 1
    if isinstance(jobs, str):
        if jobs == "auto":
            cpus = os.cpu_count() or 1
            return 1 if cpus < 2 else min(4, cpus)
        raise ValidationError(
            f"jobs must be a positive integer, None, or 'auto', got {jobs!r}"
        )
    if isinstance(jobs, bool) or not isinstance(jobs, (int, np.integer)):
        raise ValidationError(
            f"jobs must be a positive integer, None, or 'auto', got {jobs!r}"
        )
    if jobs < 1:
        raise ValidationError(f"jobs must be >= 1, got {jobs}")
    return int(jobs)


# --------------------------------------------------------------------- #
# The scheduler
# --------------------------------------------------------------------- #


class _InFlight:
    """One pending solve; concurrent requests for its key attach here."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: float | None = None
        self.error: BaseException | None = None


class PairScheduler:
    """Request queue + dedup + coalescing in front of one engine's pool.

    Parameters
    ----------
    engine:
        The :class:`~repro.snd.engine.SNDEngine` whose pool (or serial
        per-pair path) executes admitted work.  The engine creates its own
        scheduler; every evaluation entry point routes through it.
    max_pending:
        Bound on unique pairs admitted (queued or solving) at once — the
        backpressure knob.
    client_max_pending:
        Optional per-client fairness quota: a bound on the pairs any one
        client identity may hold admitted at once, scaled by that
        client's priority class (:data:`PRIORITY_WEIGHTS`).  ``None``
        (the default) disables fairness caps entirely.  A client over
        its quota fails fast with
        :class:`~repro.exceptions.ClientSaturatedError` (HTTP 429 at the
        serve tier) instead of blocking, so a greedy client can never
        park the whole queue behind its own backlog.  Anonymous requests
        (``client=None``) are exempt — only identified clients are
        rationed.  Coalesced requests never consume quota: attaching to
        someone else's solve costs nothing.

    Thread safety: the scheduler is the one component that *must* be
    shared across threads (that is its point).  All queue state lives
    under one lock; pool dispatch is additionally serialized by a
    dedicated lock because the engine's shared-memory state matrix is
    (re)written per dispatch.

    Counters (all monotonic, exposed by :meth:`stats`):

    ``requested``
        Pair requests received.
    ``cache_answered``
        Requests answered from the transition cache before any dispatch.
    ``coalesced``
        Requests attached to an existing solve of the same
        fingerprint-ordered pair (in-flight from another thread, or a
        duplicate earlier in the same batch).
    ``solved``
        Fresh solves actually dispatched.  With a shared transition
        cache, N concurrent requests for one pair contribute exactly 1.
    ``batches``
        Chunk submissions (serial runs count one batch per slice).
    ``rejected``
        Admissions refused by global backpressure (``block=False`` or
        timeout).
    ``client_rejected``
        Admissions refused by a per-client quota (fairness rejections;
        a strict subset of neither — disjoint from — ``rejected``).
    """

    def __init__(
        self,
        engine,
        *,
        max_pending: int = DEFAULT_MAX_PENDING,
        client_max_pending: int | None = None,
    ) -> None:
        if max_pending < 1:
            raise ValidationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if client_max_pending is not None and client_max_pending < 1:
            raise ValidationError(
                f"client_max_pending must be >= 1, got {client_max_pending}"
            )
        self.engine = engine
        self.max_pending = int(max_pending)
        self.client_max_pending = (
            None if client_max_pending is None else int(client_max_pending)
        )
        self._lock = threading.Lock()
        self._room = threading.Condition(self._lock)
        self._inflight: dict[tuple[bytes, bytes], _InFlight] = {}
        self._pending = 0
        self._dispatch_lock = threading.Lock()
        self._clients: dict[str, dict[str, int]] = {}
        self.requested = 0
        self.cache_answered = 0
        self.coalesced = 0
        self.solved = 0
        self.batches = 0
        self.rejected = 0
        self.client_rejected = 0
        self.peak_pending = 0

    def _client_entry(self, client: str) -> dict[str, int]:
        """Per-client counter record, created on first sight (lock held)."""
        entry = self._clients.get(client)
        if entry is None:
            entry = {
                "requested": 0,
                "cache_answered": 0,
                "coalesced": 0,
                "solved": 0,
                "rejected": 0,
                "pending": 0,
            }
            self._clients[client] = entry
        return entry

    def client_quota(self, priority: str) -> int | None:
        """Effective pending quota for *priority*, or ``None`` when
        fairness caps are disabled."""
        if priority not in PRIORITY_WEIGHTS:
            raise ValidationError(
                f"priority must be one of {sorted(PRIORITY_WEIGHTS)}, "
                f"got {priority!r}"
            )
        if self.client_max_pending is None:
            return None
        return max(1, int(self.client_max_pending * PRIORITY_WEIGHTS[priority]))

    # ------------------------------------------------------------------ #
    # Client surface
    # ------------------------------------------------------------------ #

    def submit(
        self,
        a: NetworkState,
        b: NetworkState,
        *,
        transitions: TransitionCache | None = None,
        block: bool = True,
        timeout: float | None = None,
        client: str | None = None,
        priority: str = "normal",
    ) -> float:
        """One pair through the full queue/dedup/coalesce path."""
        return self.evaluate(
            [a, b],
            [(0, 1)],
            transitions=transitions,
            block=block,
            timeout=timeout,
            client=client,
            priority=priority,
        )[0]

    def evaluate(
        self,
        states: Sequence[NetworkState],
        pairs: Sequence[tuple[int, int]],
        *,
        transitions: TransitionCache | None = None,
        jobs=None,
        block: bool = True,
        timeout: float | None = None,
        client: str | None = None,
        priority: str = "normal",
    ) -> list[float]:
        """Distances for index *pairs* over *states*, in request order.

        Each request is answered from, in order: the *transitions* cache
        (counting its historical hit/miss semantics — one probe per
        request), an in-flight or earlier-in-batch solve of the same
        fingerprint-ordered pair (coalesced), or a fresh solve batched
        into chunk submissions to the engine.  Admission of fresh pairs
        respects ``max_pending``; when the queue is full, admission
        blocks (``block=True``, optional *timeout* seconds) or raises
        :class:`~repro.exceptions.SchedulerSaturatedError`.

        *client* names the requesting identity for per-client accounting
        and (when ``client_max_pending`` is set) fairness quotas scaled
        by *priority*; an identified client over its quota fails fast
        with :class:`~repro.exceptions.ClientSaturatedError`.

        *jobs* caps this call's chunk fan-out (it can never exceed the
        engine's worker count).  Values are bit-identical to
        ``[engine.distance(states[i], states[j]) for i, j in pairs]``.
        """
        quota = self.client_quota(priority)  # validates priority up front
        pairs = list(pairs)
        n = len(pairs)
        with self._lock:
            self.requested += n
            if client is not None:
                self._client_entry(client)["requested"] += n
        if n == 0:
            return []
        results: list[float | None] = [None] * n
        keys = [
            TransitionCache.key(states[i], states[j]) for i, j in pairs
        ]
        shared_waits: list[tuple[_InFlight, int]] = []
        pos = 0
        while pos < n:
            # One admission slice: classify requests under the lock until
            # the input is exhausted or backpressure stops admission.
            owned: list[tuple[tuple[bytes, bytes], tuple[int, int]]] = []
            owned_targets: dict[tuple[bytes, bytes], list[int]] = {}
            with self._room:
                record = None if client is None else self._client_entry(client)
                while pos < n:
                    i, j = pairs[pos]
                    key = keys[pos]
                    if transitions is not None:
                        cached = transitions.get(states[i], states[j])
                        if cached is not None:
                            results[pos] = float(cached)
                            self.cache_answered += 1
                            if record is not None:
                                record["cache_answered"] += 1
                            pos += 1
                            continue
                    targets = owned_targets.get(key)
                    if targets is not None:  # duplicate within this slice
                        targets.append(pos)
                        self.coalesced += 1
                        if record is not None:
                            record["coalesced"] += 1
                        pos += 1
                        continue
                    entry = self._inflight.get(key)
                    if entry is not None:  # another client is solving it
                        shared_waits.append((entry, pos))
                        self.coalesced += 1
                        if record is not None:
                            record["coalesced"] += 1
                        pos += 1
                        continue
                    if (
                        quota is not None
                        and record is not None
                        and record["pending"] >= quota
                    ):
                        if owned:
                            break  # solve what we hold; it frees our quota
                        # Fail fast rather than block: the quota exists so a
                        # backlogged client cannot park threads in the queue.
                        self.client_rejected += 1
                        record["rejected"] += 1
                        raise ClientSaturatedError(
                            f"client {client!r} is over its pending quota "
                            f"({record['pending']}/{quota} pairs pending at "
                            f"priority {priority!r})"
                        )
                    if self._pending >= self.max_pending:
                        if owned:
                            break  # solve what we hold; it frees room
                        if not block:
                            self.rejected += 1
                            if record is not None:
                                record["rejected"] += 1
                            raise SchedulerSaturatedError(
                                f"scheduler queue is full "
                                f"({self._pending}/{self.max_pending} pairs pending)"
                            )
                        if not self._room.wait_for(
                            lambda: self._pending < self.max_pending, timeout
                        ):
                            self.rejected += 1
                            if record is not None:
                                record["rejected"] += 1
                            raise SchedulerSaturatedError(
                                f"timed out after {timeout}s waiting for queue room "
                                f"({self._pending}/{self.max_pending} pairs pending)"
                            )
                        continue  # re-classify: the cache may now hold it
                    entry = _InFlight()
                    self._inflight[key] = entry
                    self._pending += 1
                    self.peak_pending = max(self.peak_pending, self._pending)
                    if record is not None:
                        record["pending"] += 1
                    owned.append((key, (i, j)))
                    owned_targets[key] = [pos]
                    pos += 1
            if not owned:
                continue
            try:
                values = self._solve(states, [pair for _, pair in owned], jobs)
            except BaseException as exc:
                self._publish(
                    owned, None, owned_targets, results, transitions, states, exc,
                    client=client,
                )
                raise
            self._publish(
                owned, values, owned_targets, results, transitions, states, None,
                client=client,
            )

        for entry, idx in shared_waits:
            entry.event.wait()
            if entry.error is not None:
                raise entry.error
            results[idx] = entry.value
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _solve(
        self,
        states: Sequence[NetworkState],
        pairs: list[tuple[int, int]],
        jobs,
    ) -> list[float]:
        """Dispatch admitted *pairs* to the engine, chunked by worker count."""
        engine = self.engine
        call_jobs = (
            engine.jobs if jobs is None else min(engine.jobs, resolve_jobs(jobs))
        )
        self.solved += len(pairs)
        if call_jobs <= 1 or len(pairs) <= 1:
            self.batches += 1
            return engine._solve_pairs_local(states, pairs)
        chunks = [pairs[a:b] for a, b in _chunk_ranges(len(pairs), call_jobs)]
        self.batches += len(chunks)
        # The engine (re)writes states into the shared-memory matrix per
        # dispatch, so concurrent dispatches must not interleave.
        with self._dispatch_lock:
            chunk_values = engine._dispatch_chunks(states, chunks)
        return [value for chunk in chunk_values for value in chunk]

    def _publish(
        self,
        owned: list[tuple[tuple[bytes, bytes], tuple[int, int]]],
        values: list[float] | None,
        owned_targets: dict[tuple[bytes, bytes], list[int]],
        results: list[float | None],
        transitions: TransitionCache | None,
        states: Sequence[NetworkState],
        error: BaseException | None,
        client: str | None = None,
    ) -> None:
        """Resolve owned entries: fill caches/results, wake waiters, free slots."""
        if error is None and transitions is not None:
            for (key, (i, j)), value in zip(owned, values):
                transitions.put(states[i], states[j], value)
        with self._room:
            record = None if client is None else self._client_entry(client)
            for slot, (key, _pair) in enumerate(owned):
                entry = self._inflight.pop(key)
                if error is None:
                    entry.value = float(values[slot])
                    for target in owned_targets[key]:
                        results[target] = entry.value
                else:
                    entry.error = error
                entry.event.set()
                self._pending -= 1
                if record is not None:
                    record["pending"] -= 1
                    if error is None:
                        record["solved"] += 1
            self._room.notify_all()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def pending(self) -> int:
        """Unique pairs currently admitted (queued or solving)."""
        return self._pending

    def stats(self) -> dict:
        """Queue/coalescing counters (JSON-ready; the ``stats`` endpoint
        and ``SNDEngine.stats()`` embed this)."""
        with self._lock:
            clients = {
                name: dict(entry) for name, entry in self._clients.items()
            }
        return {
            "requested": self.requested,
            "cache_answered": self.cache_answered,
            "coalesced": self.coalesced,
            "solved": self.solved,
            "batches": self.batches,
            "rejected": self.rejected,
            "client_rejected": self.client_rejected,
            "pending": self._pending,
            "peak_pending": self.peak_pending,
            "max_pending": self.max_pending,
            "client_max_pending": self.client_max_pending,
            "clients": clients,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PairScheduler(pending={self._pending}/{self.max_pending}, "
            f"solved={self.solved}, coalesced={self.coalesced}, "
            f"cache_answered={self.cache_answered})"
        )
