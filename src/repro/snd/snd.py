"""The :class:`SND` facade — Social Network Distance (Eq. 3).

.. math::
   SND(G_1, G_2) = \\tfrac{1}{2}\\bigl[
       EMD^*(G_1^+, G_2^+, D(G_1,+)) + EMD^*(G_1^-, G_2^-, D(G_1,-)) +
       EMD^*(G_2^+, G_1^+, D(G_2,+)) + EMD^*(G_2^-, G_1^-, D(G_2,-))\\bigr]

Opposite-polarity users are treated as neutral inside each polarity
histogram (``NetworkState.histogram``), the ground distance is rebuilt for
the supplier-side state of each term, and each term runs through the fast
Theorem 4 pipeline. The construction is symmetric by design, so SND applies
to time-unordered state pairs.

Batch workloads (series sweeps, pairwise matrices) go through
:meth:`SND.evaluate_series` / :meth:`SND.pairwise_matrix`, which share a
:class:`~repro.snd.cache.GroundCostCache` of Eq. 2 cost arrays and accept a
``jobs=`` parallel fan-out (see :mod:`repro.snd.batch`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import StateError, ValidationError
from repro.graph.digraph import DiGraph
from repro.opinions.models.base import OpinionModel
from repro.opinions.models.model_agnostic import ModelAgnostic
from repro.opinions.state import NEGATIVE, POSITIVE, NetworkState, StateSeries
from repro.snd.banks import BankAllocation, allocate_banks
from repro.snd.batch import evaluate_series, pairwise_matrix
from repro.snd.cache import (
    CacheManager,
    DijkstraRowCache,
    GroundCostCache,
    TransitionCache,
)
from repro.snd.fast import SOLVER_CHOICES, FastTermStats, emd_star_term_fast
from repro.snd.ground import DEFAULT_MAX_COST, GroundDistanceConfig

__all__ = ["SND", "SNDResult"]


@dataclass
class SNDResult:
    """A fully itemised SND evaluation (term order as in Eq. 3)."""

    value: float
    terms: tuple[float, float, float, float]
    stats: tuple[FastTermStats, FastTermStats, FastTermStats, FastTermStats]

    @property
    def n_delta(self) -> int:
        """Changed users observed across the positive/negative terms."""
        return max(
            self.stats[0].n_suppliers + self.stats[0].n_consumers,
            self.stats[1].n_suppliers + self.stats[1].n_consumers,
        )


class SND:
    """Social Network Distance over a fixed graph and opinion model.

    Parameters
    ----------
    graph:
        The social network (direction = influence flow).
    model:
        Opinion model supplying spreading penalties; defaults to
        :class:`ModelAgnostic`.
    banks:
        A :class:`BankAllocation`, or ``None`` to allocate with *strategy* /
        *n_clusters* / *n_banks* below.
    strategy, n_clusters, n_banks:
        Bank-allocation knobs (see :func:`repro.snd.banks.allocate_banks`).
    communication_penalties, adoption_penalties:
        Optional ``-log P`` / ``-log Pin`` terms of Eq. 2.
    max_cost:
        Assumption-2 integer bound ``U``.
    engine:
        Shortest-path engine: ``"scipy"`` (default) or ``"python"``.
    heap:
        Heap for the python engine: ``"binary"``, ``"radix"``, ``"pairing"``.
    solver:
        Reduced-problem solver: ``"ssp"`` (default), ``"cost-scaling"``,
        ``"lp"``, ``"simplex"``, ``"network-simplex"`` (warm-startable
        sparse simplex; the engine threads cached bases through it on
        temporally local workloads), ``"sinkhorn-hybrid"`` (approximate,
        with a certified per-solve error bound), or ``"auto"``
        (per-instance size-based selection; large reduced instances route
        to the hybrid tier).
    hybrid_cells:
        ``solver="auto"`` escalation threshold: reduced instances with at
        least this many cost-matrix cells route to the approximate hybrid
        tier. ``"auto"`` keeps the library default
        (:data:`repro.flow.AUTO_HYBRID_CELLS`); ``None`` disables the
        hybrid tier so ``auto`` stays exact at every size.

    Examples
    --------
    >>> from repro.graph import erdos_renyi_graph
    >>> from repro.opinions import NetworkState
    >>> g = erdos_renyi_graph(30, 0.2, seed=1)
    >>> snd = SND(g, n_clusters=2, seed=0)
    >>> a = NetworkState.from_active_sets(30, positive=[0, 1], negative=[5])
    >>> b = NetworkState.from_active_sets(30, positive=[0, 2], negative=[5])
    >>> snd.distance(a, a)
    0.0
    >>> snd.distance(a, b) > 0
    True
    """

    def __init__(
        self,
        graph: DiGraph,
        model: OpinionModel | None = None,
        *,
        banks: BankAllocation | None = None,
        strategy: str = "cluster",
        n_clusters: int | None = None,
        n_banks: int = 1,
        communication_penalties: np.ndarray | None = None,
        adoption_penalties: np.ndarray | None = None,
        max_cost: int = DEFAULT_MAX_COST,
        quantize: bool = True,
        engine: str = "scipy",
        heap: str = "binary",
        solver: str = "ssp",
        hybrid_cells: "int | str | None" = "auto",
        bank_metric: str = "nearest",
        bank_shares: str = "mass",
        seed=None,
    ) -> None:
        self.graph = graph
        self.model = model if model is not None else ModelAgnostic()
        if banks is None:
            banks = allocate_banks(
                graph,
                strategy=strategy,
                n_clusters=n_clusters,
                n_banks=n_banks,
                max_cost=max_cost,
                seed=seed,
            )
        banks.validate(graph.num_nodes)
        self.banks = banks
        self.ground = GroundDistanceConfig(
            model=self.model,
            communication_penalties=communication_penalties,
            adoption_penalties=adoption_penalties,
            max_cost=max_cost,
            quantize=quantize,
        )
        if engine not in ("scipy", "python"):
            raise ValidationError(f"unknown engine {engine!r}")
        if solver not in SOLVER_CHOICES:
            raise ValidationError(
                f"unknown solver {solver!r}; expected one of {sorted(SOLVER_CHOICES)}"
            )
        if hybrid_cells is not None and hybrid_cells != "auto":
            if not isinstance(hybrid_cells, (int, np.integer)) or hybrid_cells < 1:
                raise ValidationError(
                    f"hybrid_cells must be a positive integer, None, or "
                    f"'auto', got {hybrid_cells!r}"
                )
            hybrid_cells = int(hybrid_cells)
        self.engine = engine
        self.heap = heap
        self.solver = solver
        self.hybrid_cells = hybrid_cells
        self.bank_metric = bank_metric
        self.bank_shares = bank_shares
        self._caches: CacheManager | None = None

    # ------------------------------------------------------------------ #

    def _check_state(self, state: NetworkState) -> None:
        if state.n != self.graph.num_nodes:
            raise StateError(
                f"state covers {state.n} users, graph has {self.graph.num_nodes}"
            )

    def term(
        self,
        supplier_state: NetworkState,
        consumer_state: NetworkState,
        opinion: int,
        *,
        edge_costs: np.ndarray | None = None,
        row_cache: DijkstraRowCache | None = None,
        cost_key=None,
        basis_cache=None,
        basis_key=None,
        stats: FastTermStats | None = None,
    ) -> float:
        """One EMD* term: mass of *opinion* moving from *supplier_state*'s
        adopters to *consumer_state*'s adopters under the ground distance
        built from *supplier_state*.

        *edge_costs* short-circuits the Eq. 2 build with a precomputed
        CSR-aligned cost array (the batch engine passes cached arrays); it
        must equal ``self.ground.edge_costs(graph, supplier_state, opinion)``.
        *row_cache* / *cost_key* (the batch engine's ``(state fingerprint,
        opinion)`` content key for *edge_costs*) additionally reuse
        per-source Dijkstra rows across terms — value-preserving, see
        :class:`~repro.snd.cache.DijkstraRowCache`. *basis_cache* /
        *basis_key* (the term's ``(supplier fingerprint, consumer
        fingerprint, opinion)`` key) thread spanning-tree warm starts
        through basis-carrying solvers — also value-preserving, see
        :class:`~repro.snd.cache.BasisCache`.
        """
        self._check_state(supplier_state)
        self._check_state(consumer_state)
        if edge_costs is None:
            edge_costs = self.ground.edge_costs(self.graph, supplier_state, opinion)
        return emd_star_term_fast(
            self.graph,
            supplier_state.histogram(opinion),
            consumer_state.histogram(opinion),
            edge_costs,
            self.banks,
            max_cost=self.ground.max_cost,
            engine=self.engine,
            heap=self.heap,
            solver=self.solver,
            hybrid_cells=self.hybrid_cells,
            bank_metric=self.bank_metric,
            bank_shares=self.bank_shares,
            row_cache=row_cache,
            cost_key=cost_key,
            basis_cache=basis_cache,
            basis_key=basis_key,
            stats=stats,
        )

    def distance(self, state_a: NetworkState, state_b: NetworkState) -> float:
        """SND between two states (Eq. 3)."""
        return self.evaluate(state_a, state_b).value

    def evaluate(self, state_a: NetworkState, state_b: NetworkState) -> SNDResult:
        """SND with per-term values and pipeline diagnostics."""
        stats = tuple(FastTermStats() for _ in range(4))
        terms = (
            self.term(state_a, state_b, POSITIVE, stats=stats[0]),
            self.term(state_a, state_b, NEGATIVE, stats=stats[1]),
            self.term(state_b, state_a, POSITIVE, stats=stats[2]),
            self.term(state_b, state_a, NEGATIVE, stats=stats[3]),
        )
        return SNDResult(value=0.5 * sum(terms), terms=terms, stats=stats)

    # ------------------------------------------------------------------ #
    # Batch evaluation (see repro.snd.batch)
    # ------------------------------------------------------------------ #

    @property
    def caches(self) -> CacheManager:
        """The instance-level cache hierarchy shared by every entry point.

        Created lazily; single-pair calls are cache-free, but the batch
        wrappers, :class:`~repro.snd.engine.SNDEngine`, the distance
        registry, and :class:`~repro.snd.engine.Corpus` all draw from this
        one :class:`~repro.snd.cache.CacheManager` unless handed an
        explicit hierarchy, so repeated sweeps over overlapping states
        (sliding windows, matrix extensions, streams) reuse earlier work.
        """
        if self._caches is None:
            self._caches = CacheManager()
        return self._caches

    @property
    def ground_cache(self) -> GroundCostCache:
        """The instance-level ground-cost cache (``caches.ground``):
        Eq. 2 cost arrays keyed by state content and polarity."""
        return self.caches.ground

    @property
    def row_cache(self) -> DijkstraRowCache:
        """The instance-level per-source Dijkstra row cache
        (``caches.rows``); reuses rows of sources whose supplier-side
        costs did not change between terms (value-preserving — see
        :class:`~repro.snd.cache.DijkstraRowCache`)."""
        return self.caches.rows

    @property
    def transition_cache(self) -> TransitionCache:
        """The instance-level cache of finished transition values
        (``caches.transitions``); windowed sweeps (``window=``) draw from
        it so a window shifted by one state re-solves exactly one
        transition."""
        return self.caches.transitions

    def create_engine(self, *, jobs="auto", executor: str = "process", **kwargs):
        """A persistent :class:`~repro.snd.engine.SNDEngine` over this
        instance, sharing its cache hierarchy (see
        :mod:`repro.snd.engine`). The caller owns its lifetime — use it as
        a context manager or call ``close()``. (Named ``create_engine``
        because :attr:`engine` is the shortest-path engine knob.)
        """
        from repro.snd.engine import SNDEngine

        return SNDEngine(self, jobs=jobs, executor=executor, **kwargs)

    def evaluate_series(
        self,
        series: StateSeries,
        *,
        jobs: int | None = None,
        cache: GroundCostCache | None = None,
        executor: str = "process",
        transitions: TransitionCache | None = None,
        row_cache: DijkstraRowCache | None = None,
        window: int | None = None,
    ) -> np.ndarray:
        """Adjacent-state distances with ground-cost caching and an
        optional ``jobs``-way parallel fan-out.

        ``window=W`` switches to incremental sliding-window evaluation:
        the series is processed through overlapping length-``W`` windows
        sharing the instance :attr:`transition_cache`, so each one-state
        shift re-solves exactly one fresh transition (repeat calls over
        overlapping series reuse earlier sweeps the same way). The
        returned ``(T-1,)`` array is bit-identical to the from-scratch
        sweep in every mode; see :func:`repro.snd.batch.evaluate_series`
        for the caching and parallelism contract.
        """
        if window is not None and transitions is None:
            transitions = self.transition_cache
        return evaluate_series(
            self,
            series,
            jobs=jobs,
            cache=cache if cache is not None else self.ground_cache,
            executor=executor,
            transitions=transitions,
            row_cache=row_cache if row_cache is not None else self.row_cache,
            window=window,
        )

    def pairwise_matrix(
        self,
        states,
        *,
        jobs: int | None = None,
        cache: GroundCostCache | None = None,
        executor: str = "process",
        row_cache: DijkstraRowCache | None = None,
    ) -> np.ndarray:
        """Symmetric all-pairs SND matrix (upper triangle evaluated once).

        See :func:`repro.snd.batch.pairwise_matrix`.
        """
        states = list(states)
        if cache is None:
            cache = self.ground_cache
            if cache.maxsize < 2 * len(states):
                # The instance cache is too small to hold every state's two
                # cost arrays — a transient right-sized cache keeps builds
                # at 2N without permanently pinning 2N arrays on the
                # instance (a long-lived SNDEngine grows its own hierarchy
                # instead, by explicit opt-in).
                cache = GroundCostCache(2 * len(states))
        return pairwise_matrix(
            self,
            states,
            jobs=jobs,
            cache=cache,
            executor=executor,
            row_cache=row_cache if row_cache is not None else self.row_cache,
        )

    def distance_series(self, series: StateSeries) -> np.ndarray:
        """Distances between adjacent states: ``d_t = SND(G_{t-1}, G_t)``.

        Returns an array of length ``len(series) - 1``. Runs through the
        cached serial batch path (identical values, half the ground-cost
        builds); pass ``jobs=`` to :meth:`evaluate_series` to parallelise.
        """
        return self.evaluate_series(series)

    def __call__(self, state_a: NetworkState, state_b: NetworkState) -> float:
        return self.distance(state_a, state_b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SND(n={self.graph.num_nodes}, model={self.model.name}, "
            f"clusters={self.banks.n_clusters}, banks={self.banks.n_banks}, "
            f"engine={self.engine}, solver={self.solver})"
        )
