"""The linear-time SND computation (Theorem 4, §5).

Per EMD* term the pipeline is:

1. **Reduce** (Lemmas 1-2): cancel per-bin common mass; the surviving
   suppliers/consumers are exactly the users whose opinion changed — at
   most ``n∆`` of each (Assumption 1).
2. **Shortest paths**: one single-source Dijkstra per changed user on the
   bank-free side (forward from suppliers when the banks sit on the demand
   side, reversed from consumers otherwise) — under the default
   ``"nearest"`` bank metric those same rows also price every bank arc, so
   no extra shortest-path work is needed. The paper-literal ``"cluster"``
   metric additionally runs one multi-source Dijkstra per cluster hosting
   changed users. Rows are per-source and depend only on the supplier-side
   edge costs, so batch sweeps hand in a
   :class:`~repro.snd.cache.DijkstraRowCache` to reuse rows of unchanged
   sources across terms and transitions.
3. **Solve the reduced problem**: ``solver="auto"`` (via
   :func:`repro.flow.select_transport_method`) picks per instance between
   the hub-expanded sparse min-cost flow (vectorised SSP kernel; arc count
   ``O(n∆² + n∆·Nc + Nc·N_b)``), the dense MODI simplex, and the HiGHS LP
   on the bank-folded dense form — all exact, chosen purely for speed.
   Reduced instances beyond :data:`repro.flow.AUTO_HYBRID_CELLS` cells
   route to the approximate ``"sinkhorn-hybrid"`` tier (entropic screen +
   sparse exact solve, certified per-solve error bound; see
   :mod:`repro.flow.sinkhorn_hybrid`).

Under ``bank_metric="nearest"`` the result *exactly* equals the direct
(unreduced) EMD* — the extended ground distance is a semimetric, so the
Lemma 2 cancellation is lossless (property-tested against
:mod:`repro.snd.direct`). Under ``"cluster"`` the extended distance can
violate the triangle inequality across clusters and the reduction is exact
only up to that defect (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.emd.reduction import reduced_problem_profile
from repro.exceptions import ValidationError
from repro.flow import select_transport_method, solve_mcf_cost_scaling, solve_mcf_ssp
from repro.flow.basis import TransportBasis
from repro.flow.network_simplex import last_network_simplex_info
from repro.flow.problem import MinCostFlowProblem
from repro.flow.sinkhorn_hybrid import last_hybrid_info
from repro.graph.digraph import DiGraph
from repro.shortestpath.dijkstra import dijkstra_multi, multi_source_distances
from repro.snd.banks import BankAllocation
from repro.snd.ground import unreachable_cost

__all__ = ["emd_star_term_fast", "FastTermStats", "SOLVER_CHOICES"]

_EPS = 1e-12

#: Valid values for the ``solver=`` knob of the fast pipeline (and of
#: :class:`repro.snd.snd.SND`). ``"auto"`` selects per reduced instance
#: (and routes very large reduced instances to the approximate
#: ``"sinkhorn-hybrid"`` tier — see :data:`repro.flow.AUTO_HYBRID_CELLS`).
#: ``"network-simplex"`` is the warm-startable sparse simplex: paired with
#: a :class:`repro.snd.cache.BasisCache` it reuses the previous optimal
#: spanning tree across temporally local solves.
SOLVER_CHOICES = (
    "auto",
    "ssp",
    "cost-scaling",
    "lp",
    "simplex",
    "network-simplex",
    "sinkhorn-hybrid",
)


@dataclass
class FastTermStats:
    """Diagnostics from one fast EMD* term (used by scalability benches)."""

    n_suppliers: int = 0
    n_consumers: int = 0
    n_sssp_runs: int = 0
    n_cluster_runs: int = 0
    n_arcs: int = 0
    cost: float = 0.0
    solver: str = ""
    density: float = 1.0
    #: Fraction of reduced-instance cells kept by the sinkhorn-hybrid
    #: screen (1.0 when an exact solver ran, or the instance was small
    #: enough that the hybrid delegated to an exact solve).
    support_density: float = 1.0
    #: Certified relative-error bound of the hybrid solve (0.0 for exact).
    screen_error_bound: float = 0.0
    #: Simplex pivots of the network-simplex solve (0 for other solvers).
    pivots: int = 0
    #: Whether the network-simplex solve started from a cached warm basis.
    warm_start: bool = False


def _min_distance_from_set(
    graph: DiGraph,
    members: np.ndarray,
    edge_costs: np.ndarray,
    *,
    reverse: bool,
    engine: str,
) -> np.ndarray:
    """``min_{s in members} dist(s -> v)`` for every node v (or ``v -> s``
    when *reverse*). One Dijkstra pass regardless of ``len(members)``."""
    if engine == "python":
        work = graph.reverse() if reverse else graph
        w = edge_costs
        if reverse:
            graph._ensure_reverse()  # noqa: SLF001 - align costs with reversed CSR
            w = np.asarray(edge_costs)[graph._rev_edge_ids]  # noqa: SLF001
        return dijkstra_multi(work, members, weights=w)

    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra as sp_dijkstra

    n = graph.num_nodes
    work = graph.reverse() if reverse else graph
    w = edge_costs
    if reverse:
        graph._ensure_reverse()  # noqa: SLF001
        w = np.asarray(edge_costs)[graph._rev_edge_ids]  # noqa: SLF001

    # Virtual super-source n with unit edges into the member set; the +1
    # offset avoids scipy's explicit-zero ambiguity and is subtracted back.
    indptr = np.append(work.indptr, work.indptr[-1] + len(members))
    indices = np.concatenate([work.indices, np.asarray(members, dtype=np.int64)])
    data = np.concatenate([np.asarray(w, dtype=np.float64), np.ones(len(members))])
    matrix = csr_matrix((data, indices, indptr), shape=(n + 1, n + 1))
    dist = sp_dijkstra(matrix, directed=True, indices=n)
    return np.maximum(dist[:n] - 1.0, 0.0)


def _distance_rows(
    graph: DiGraph,
    sources: np.ndarray,
    edge_costs: np.ndarray,
    *,
    reverse: bool,
    engine: str,
    heap: str,
    row_cache=None,
    cost_key=None,
) -> np.ndarray:
    """Per-source shortest-path rows, drawn from *row_cache* when possible.

    Falls back to :func:`multi_source_distances` directly (identical
    values) when no cache or no content key is available.
    """
    if row_cache is None or cost_key is None:
        return multi_source_distances(
            graph, sources, weights=edge_costs, engine=engine, heap=heap,
            reverse=reverse,
        )
    return row_cache.distance_rows(
        graph, sources, edge_costs, reverse=reverse, engine=engine, heap=heap,
        cost_key=cost_key,
    )


def _bank_capacities(
    histogram: np.ndarray, banks: BankAllocation, deficit: float, bank_shares: str
) -> np.ndarray:
    """Bank capacities, ``(n_clusters, n_banks)``.

    Must match :func:`repro.emd.emd_star.build_extension` exactly (the
    fast/direct equivalence depends on it).
    """
    nc, nb = banks.n_clusters, banks.n_banks
    caps = np.zeros((nc, nb))
    if deficit <= 0:
        return caps
    sizes = np.array([len(c) for c in banks.clusters], dtype=np.float64)
    if bank_shares == "size":
        shares = sizes / sizes.sum()
    elif bank_shares == "mass":
        cluster_of = banks.cluster_of(histogram.shape[0])
        cluster_mass = np.bincount(
            cluster_of, weights=histogram, minlength=nc
        ).astype(np.float64)
        total = cluster_mass.sum()
        shares = cluster_mass / total if total > 0 else sizes / sizes.sum()
    else:
        raise ValidationError(
            f"bank_shares must be 'mass' or 'size', got {bank_shares!r}"
        )
    caps[:] = (shares[:, None] / nb) * deficit
    return caps


def emd_star_term_fast(
    graph: DiGraph,
    p_hist: np.ndarray,
    q_hist: np.ndarray,
    edge_costs: np.ndarray,
    banks: BankAllocation,
    *,
    max_cost: int,
    engine: str = "scipy",
    heap: str = "binary",
    solver: str = "ssp",
    hybrid_cells: "int | str | None" = "auto",
    bank_metric: str = "nearest",
    bank_shares: str = "mass",
    row_cache=None,
    cost_key=None,
    basis_cache=None,
    basis_key=None,
    stats: FastTermStats | None = None,
) -> float:
    """One EMD* term of Eq. 3 via the Theorem 4 reduction.

    Parameters
    ----------
    p_hist, q_hist:
        Supplier / consumer histograms over the graph's nodes (e.g. the
        ``G+`` indicators of two states).
    edge_costs:
        CSR-aligned ground costs from :func:`repro.snd.ground.build_edge_costs`.
    banks:
        The bank allocation shared across terms.
    max_cost:
        Assumption-2 bound ``U`` (sizes the unreachable-distance clamp).
    solver:
        ``"ssp"`` (default), ``"cost-scaling"``, ``"lp"``, ``"simplex"``,
        ``"sinkhorn-hybrid"`` (approximate, certified error bound), or
        ``"auto"`` (per-instance size-based selection; routes reduced
        instances above :data:`repro.flow.AUTO_HYBRID_CELLS` cells to the
        hybrid tier).
    hybrid_cells:
        Overrides the ``"auto"`` escalation threshold (reduced-instance
        cell count at which the hybrid tier takes over): a positive
        integer, ``None`` to disable the hybrid tier, or ``"auto"`` for
        the library default. Ignored for explicit solver choices.
    bank_metric:
        ``"nearest"`` (default, semimetric-preserving) or ``"cluster"``
        (the literal Eq. 4); see :func:`repro.emd.emd_star.build_extension`.
    row_cache, cost_key:
        Optional :class:`~repro.snd.cache.DijkstraRowCache` plus the
        content key of *edge_costs* (state fingerprint, opinion); per-source
        Dijkstra rows are then reused across terms sharing the key.
    basis_cache, basis_key:
        Optional :class:`~repro.snd.cache.BasisCache` plus this term's key
        ``(supplier fingerprint, consumer fingerprint, opinion)``. Only
        consulted when the (resolved) solver is ``"network-simplex"`` or
        ``"sinkhorn-hybrid"``: the nearest cached basis (same term,
        transposed term, or previous term with the same supplier state)
        warm-starts the solve, and the fresh optimal basis is stored back
        in stable node-label space. Values are unaffected — a warm basis
        only changes where pivoting starts.
    """
    if bank_metric not in ("nearest", "cluster"):
        raise ValidationError(
            f"bank_metric must be 'nearest' or 'cluster', got {bank_metric!r}"
        )
    if solver not in SOLVER_CHOICES:
        raise ValidationError(
            f"unknown solver {solver!r}; expected one of {sorted(SOLVER_CHOICES)}"
        )
    n = graph.num_nodes
    p = np.asarray(p_hist, dtype=np.float64)
    q = np.asarray(q_hist, dtype=np.float64)
    if p.shape != (n,) or q.shape != (n,):
        raise ValidationError("histograms must have one bin per graph node")

    total_p, total_q = float(p.sum()), float(q.sum())
    delta = abs(total_p - total_q)

    # Lemma 2: cancel common mass; Lemma 1: keep only non-empty bins.
    common = np.minimum(p, q)
    sup_ids = np.flatnonzero(p - common > _EPS)
    con_ids = np.flatnonzero(q - common > _EPS)
    sup_amounts = (p - common)[sup_ids]
    con_amounts = (q - common)[con_ids]

    if sup_ids.size == 0 and con_ids.size == 0 and delta <= _EPS:
        if stats is not None:
            stats.cost = 0.0
        return 0.0

    banks_on_demand_side = total_p >= total_q  # lighter histogram hosts banks
    lighter_hist = q if banks_on_demand_side else p
    bank_caps = _bank_capacities(lighter_hist, banks, delta, bank_shares)
    active_bank_clusters = np.flatnonzero(bank_caps.sum(axis=1) > _EPS)

    unreach = unreachable_cost(n, max_cost)
    cluster_of = banks.cluster_of(n)
    gamma = banks.gamma_matrix()
    nc, nb = banks.n_clusters, banks.n_banks
    cluster_arrays = [np.asarray(c, dtype=np.int64) for c in banks.clusters]

    # ---- shortest paths ---------------------------------------------- #
    # Run the per-user Dijkstras from the bank-free side so the same rows
    # price both the supplier->consumer block and (under "nearest") every
    # bank arc. When there are no banks (delta == 0), run from the smaller
    # side.
    if delta > _EPS:
        run_forward = banks_on_demand_side
    else:
        run_forward = sup_ids.size <= con_ids.size

    rows = np.empty((0, n))
    if run_forward and sup_ids.size:
        rows = _distance_rows(
            graph, sup_ids, edge_costs, reverse=False, engine=engine, heap=heap,
            row_cache=row_cache, cost_key=cost_key,
        )
        d_sc = rows[:, con_ids] if con_ids.size else np.empty((sup_ids.size, 0))
        n_sssp = sup_ids.size
    elif not run_forward and con_ids.size:
        rows = _distance_rows(
            graph, con_ids, edge_costs, reverse=True, engine=engine, heap=heap,
            row_cache=row_cache, cost_key=cost_key,
        )
        d_sc = rows[:, sup_ids].T if sup_ids.size else np.empty((0, con_ids.size))
        n_sssp = con_ids.size
    else:
        d_sc = np.zeros((sup_ids.size, con_ids.size))
        n_sssp = 0
    d_sc = np.where(np.isfinite(d_sc), d_sc, unreach)

    # Bank-arc distances.
    n_cluster_runs = 0
    bank_leg: dict[int, np.ndarray] = {}
    if delta > _EPS and active_bank_clusters.size:
        if bank_metric == "nearest":
            if banks_on_demand_side:
                # supplier s -> bank of cluster c: min over members of row.
                for c in active_bank_clusters:
                    members = cluster_arrays[c]
                    leg = rows[:, members].min(axis=1) if rows.size else np.empty(0)
                    bank_leg[int(c)] = np.where(np.isfinite(leg), leg, unreach)
            else:
                # bank of cluster c -> consumer t: min over members of the
                # reversed rows (rows[t, v] = D(v, t)).
                for c in active_bank_clusters:
                    members = cluster_arrays[c]
                    leg = rows[:, members].min(axis=1) if rows.size else np.empty(0)
                    bank_leg[int(c)] = np.where(np.isfinite(leg), leg, unreach)
        else:  # "cluster": per-cluster multi-source runs for the d matrix
            if banks_on_demand_side:
                side_ids = sup_ids
            else:
                side_ids = con_ids
            side_clusters = (
                np.unique(cluster_of[side_ids]) if side_ids.size else np.array([], dtype=np.int64)
            )
            d_block = np.full((nc, nc), np.inf)
            for a in side_clusters:
                dist = _min_distance_from_set(
                    graph,
                    cluster_arrays[a],
                    edge_costs,
                    reverse=not banks_on_demand_side,
                    engine=engine,
                )
                per_cluster = np.array(
                    [float(np.min(dist[c])) for c in cluster_arrays]
                )
                d_block[a] = np.where(np.isfinite(per_cluster), per_cluster, unreach)
                n_cluster_runs += 1
            # bank_leg[c][k] = d(cluster_of(user k on the bank-free side), c)
            for c in active_bank_clusters:
                if banks_on_demand_side:
                    leg = d_block[cluster_of[sup_ids], c] if sup_ids.size else np.empty(0)
                else:
                    leg = d_block[cluster_of[con_ids], c] if con_ids.size else np.empty(0)
                bank_leg[int(c)] = np.where(np.isfinite(leg), leg, unreach)

    # ---- pick the reduced-problem solver ------------------------------ #
    n_bank_bins = int(np.count_nonzero(bank_caps[active_bank_clusters] > _EPS))
    if banks_on_demand_side:
        folded_rows, folded_cols = sup_ids.size, con_ids.size + n_bank_bins
    else:
        folded_rows, folded_cols = sup_ids.size + n_bank_bins, con_ids.size
    if solver == "auto":
        # Basis-aware selection: when the caller threads a basis cache and
        # key, a previous optimal basis may be available for this instance
        # (temporal-locality workloads — sliding windows, corpus appends),
        # so auto routes the exact mid/large region to the warm-startable
        # network simplex instead of ssp/lp.
        warm = basis_cache is not None and basis_key is not None
        if hybrid_cells == "auto":
            solver = select_transport_method(
                folded_rows, folded_cols, warm_basis=warm
            )
        else:
            solver = select_transport_method(
                folded_rows, folded_cols, hybrid_cells=hybrid_cells,
                warm_basis=warm,
            )
    if stats is not None:
        profile = reduced_problem_profile(
            sup_amounts, con_amounts, d_sc, unreachable=unreach
        )
        stats.n_suppliers = int(sup_ids.size)
        stats.n_consumers = int(con_ids.size)
        stats.n_sssp_runs = int(n_sssp)
        stats.solver = solver
        stats.n_cluster_runs = int(n_cluster_runs)
        stats.n_arcs = 0
        stats.density = profile["density"]

    if solver in ("lp", "simplex", "network-simplex", "sinkhorn-hybrid"):
        # Dense bank-folded transportation problem — the fast choice for
        # large n∆ where per-augmentation overhead dominates the MCF path.
        # "sinkhorn-hybrid" rides the same folding and trades a certified
        # relative error for scale on very large reduced instances;
        # "network-simplex" additionally threads warm bases through the
        # basis cache when one is supplied.
        cost = _solve_reduced_dense(
            sup_amounts,
            con_amounts,
            d_sc,
            bank_leg,
            bank_caps,
            gamma,
            active_bank_clusters,
            banks_on_demand_side,
            method=solver,
            sup_ids=sup_ids,
            con_ids=con_ids,
            basis_cache=basis_cache,
            basis_key=basis_key,
        )
        if stats is not None:
            stats.cost = float(cost)
            if solver == "sinkhorn-hybrid":
                info = last_hybrid_info()
                if info is not None:
                    stats.support_density = float(info.support_density)
                    stats.screen_error_bound = float(info.screen_error_bound)
            if solver == "network-simplex" or (
                solver == "sinkhorn-hybrid" and basis_cache is not None
            ):
                ns_info = last_network_simplex_info()
                if ns_info is not None:
                    stats.pivots = int(ns_info.pivots)
                    stats.warm_start = bool(ns_info.warm)
        return float(cost)

    # ---- build the hub-expanded min-cost-flow instance ---------------- #
    n_s, n_c = sup_ids.size, con_ids.size
    hub_base = n_s + n_c
    bank_base = hub_base + nc
    mcf = MinCostFlowProblem(bank_base + nc * nb)

    mcf.supply[:n_s] = sup_amounts
    mcf.supply[n_s : n_s + n_c] -= con_amounts

    inf_cap = total_p + total_q + 1.0
    if n_s and n_c:
        # Dense supplier x consumer block, in the row-major order the
        # per-pair loop used.
        mcf.add_edges(
            np.repeat(np.arange(n_s), n_c),
            n_s + np.tile(np.arange(n_c), n_s),
            np.full(n_s * n_c, inf_cap),
            d_sc.ravel(),
        )

    if banks_on_demand_side:
        for c in active_bank_clusters:
            leg = bank_leg[int(c)]
            hub = hub_base + int(c)
            mcf.add_edges(
                np.arange(n_s),
                np.full(n_s, hub),
                np.full(n_s, inf_cap),
                leg,
            )
            for j in range(nb):
                cap = float(bank_caps[c, j])
                if cap > _EPS:
                    bank_node = bank_base + int(c) * nb + j
                    mcf.add_edge(hub, bank_node, inf_cap, float(gamma[c, j]))
                    mcf.add_supply(bank_node, -cap)
    else:
        for c in active_bank_clusters:
            leg = bank_leg[int(c)]
            hub = hub_base + int(c)
            for j in range(nb):
                cap = float(bank_caps[c, j])
                if cap > _EPS:
                    bank_node = bank_base + int(c) * nb + j
                    mcf.add_edge(bank_node, hub, inf_cap, float(gamma[c, j]))
                    mcf.add_supply(bank_node, cap)
            mcf.add_edges(
                np.full(n_c, hub),
                n_s + np.arange(n_c),
                np.full(n_c, inf_cap),
                leg,
            )

    if solver == "ssp":
        solution = solve_mcf_ssp(mcf)
    else:  # "cost-scaling"
        solution = _solve_scaled_integer(mcf)

    if stats is not None:
        stats.n_arcs = mcf.n_edges
        stats.cost = float(solution.cost)
    return float(solution.cost)


def _map_labeled_basis(
    basis: TransportBasis, row_labels: np.ndarray, col_labels: np.ndarray
) -> TransportBasis | None:
    """Re-anchor a label-space basis onto one instance's local indices.

    Cells survive only when *both* labels exist in the new instance —
    which is exactly the temporal-locality overlap the warm start
    exploits. Returns ``None`` when nothing survives (a cold solve)."""
    ridx = {int(label): i for i, label in enumerate(row_labels)}
    cidx = {int(label): j for j, label in enumerate(col_labels)}
    rows: list[int] = []
    cols: list[int] = []
    for label_r, label_c in zip(basis.rows, basis.cols):
        i = ridx.get(int(label_r))
        j = cidx.get(int(label_c))
        if i is not None and j is not None:
            rows.append(i)
            cols.append(j)
    if not rows:
        return None
    return TransportBasis(
        rows=np.asarray(rows, dtype=np.int64), cols=np.asarray(cols, dtype=np.int64)
    )


def _solve_reduced_dense(
    sup_amounts: np.ndarray,
    con_amounts: np.ndarray,
    d_sc: np.ndarray,
    bank_leg: dict[int, np.ndarray],
    bank_caps: np.ndarray,
    gamma: np.ndarray,
    active_bank_clusters: np.ndarray,
    banks_on_demand_side: bool,
    *,
    method: str = "lp",
    sup_ids: np.ndarray | None = None,
    con_ids: np.ndarray | None = None,
    basis_cache=None,
    basis_key=None,
) -> float:
    """Solve the reduced problem as one dense transportation instance.

    Bank bins are appended as extra consumers (or suppliers); the hub
    decomposition is folded back into per-pair costs ``leg + γ``. The
    instance is handed to :func:`repro.flow.solve_transportation` with
    *method* (``"lp"`` — HiGHS —, ``"simplex"`` — MODI —,
    ``"network-simplex"`` — warm-startable —, or ``"sinkhorn-hybrid"`` —
    approximate screened solve).

    When a *basis_cache*/*basis_key* pair is supplied and the method can
    carry a basis, the instance's axes are labelled with stable ids
    (global supplier/consumer node ids; bank bins as negative labels
    ``-(1 + cluster·nb + bin)``), the nearest cached basis is re-anchored
    onto those labels to warm-start the solve, and the optimal basis is
    stored back under the term key.
    """
    from repro.flow import solve_transportation
    from repro.flow.network_simplex import solve_transportation_network_simplex
    from repro.flow.problem import TransportationProblem
    from repro.flow.sinkhorn_hybrid import solve_transportation_sinkhorn_hybrid

    bank_cols: list[np.ndarray] = []
    bank_amounts: list[float] = []
    bank_labels: list[int] = []
    nb = bank_caps.shape[1] if bank_caps.size else 0
    for c in active_bank_clusters:
        leg = bank_leg[int(c)]
        for j in range(nb):
            cap = float(bank_caps[c, j])
            if cap <= _EPS:
                continue
            bank_cols.append(leg + float(gamma[c, j]))
            bank_amounts.append(cap)
            bank_labels.append(-(1 + int(c) * nb + j))

    if banks_on_demand_side:
        supplies = sup_amounts
        demands = np.concatenate([con_amounts, np.asarray(bank_amounts)])
        if bank_cols:
            costs = np.hstack([d_sc, np.column_stack(bank_cols)])
        else:
            costs = d_sc
    else:
        supplies = np.concatenate([sup_amounts, np.asarray(bank_amounts)])
        demands = con_amounts
        if bank_cols:
            costs = np.vstack([d_sc, np.vstack([col for col in bank_cols])])
        else:
            costs = d_sc

    if supplies.size == 0 or demands.size == 0:
        return 0.0
    problem = TransportationProblem(supplies, demands, costs)

    use_basis = (
        basis_cache is not None
        and basis_key is not None
        and sup_ids is not None
        and con_ids is not None
        and method in ("network-simplex", "sinkhorn-hybrid")
    )
    if not use_basis:
        return float(solve_transportation(problem, method=method).cost)

    bank_label_arr = np.asarray(bank_labels, dtype=np.int64)
    if banks_on_demand_side:
        row_labels = np.asarray(sup_ids, dtype=np.int64)
        col_labels = np.concatenate([np.asarray(con_ids, dtype=np.int64), bank_label_arr])
    else:
        row_labels = np.concatenate([np.asarray(sup_ids, dtype=np.int64), bank_label_arr])
        col_labels = np.asarray(con_ids, dtype=np.int64)

    warm = basis_cache.get_warm(basis_key)
    warm_local = (
        _map_labeled_basis(warm, row_labels, col_labels) if warm is not None else None
    )
    if method == "network-simplex":
        plan, out_basis = solve_transportation_network_simplex(
            problem, basis=warm_local, return_basis=True
        )
    else:
        plan, out_basis = solve_transportation_sinkhorn_hybrid(
            problem,
            exact_backend="network-simplex",
            warm_basis=warm_local,
            return_basis=True,
        )
    if len(out_basis):
        basis_cache.put_term(
            basis_key,
            TransportBasis(
                rows=row_labels[out_basis.rows], cols=col_labels[out_basis.cols]
            ),
        )
    return float(plan.cost)


def _solve_scaled_integer(mcf: MinCostFlowProblem):
    """Run the cost-scaling solver after rationalising masses and costs.

    Bank capacities are rationals with bounded denominators; scaling all
    supplies by a common factor and rounding makes the instance integral.
    The returned cost is mapped back to the original mass scale.
    """
    tails, heads, caps, costs = mcf.arrays()
    mass_scale = 1.0
    supply = mcf.supply
    if not np.allclose(supply, np.round(supply)):
        # Find a scale that makes supplies integral (denominators come from
        # cluster-share splits; powers of ten cover them in practice, and
        # 10^9 caps pathological cases).
        for exponent in range(1, 10):
            candidate = 10.0**exponent
            if np.allclose(
                supply * candidate, np.round(supply * candidate), atol=1e-6
            ):
                mass_scale = candidate
                break
        else:
            mass_scale = 1e9
    cost_scale = 1.0
    if not np.allclose(costs, np.round(costs)):
        cost_scale = 1e6

    scaled = MinCostFlowProblem(mcf.n_nodes)
    scaled.add_edges(
        tails,
        heads,
        np.round(caps * mass_scale),
        np.round(costs * cost_scale),
    )
    scaled.supply = np.round(supply * mass_scale)
    # Rounding can break balance by a unit; repair on the largest entry.
    imbalance = scaled.supply.sum()
    if imbalance != 0:
        idx = int(np.argmax(np.abs(scaled.supply)))
        scaled.supply[idx] -= imbalance
    solution = solve_mcf_cost_scaling(scaled)
    solution.cost = solution.cost / (mass_scale * cost_scale)
    return solution
