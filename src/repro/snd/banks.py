"""Bank-bin allocation strategies for EMD* inside SND (§4).

A :class:`BankAllocation` fixes, per graph, (a) the partition of users into
bin clusters and (b) the ground distance γ to/from each cluster's banks.
Three strategies mirror the design space the paper sketches:

* ``"global"`` — one cluster, one bank group: recovers EMDα behaviour;
* ``"per-bin"`` — one cluster per user: maximal locality, largest problem;
* ``"cluster"`` (default) — the compromise: a balanced BFS partition with
  one or more banks per cluster.

γ defaults respect the Theorem 3 metricity condition
``γ ≥ ½ · max intra-cluster D`` without computing intra-cluster diameters
exactly: for any node v of cluster C, the hop-eccentricity bound
``diam(C) ≤ 2·ecc(v)`` gives ``max D ≤ U·2·ecc(v)``, so ``γ = U·ecc(v)``
is always safe. Multiple banks per cluster get geometrically spaced γ
(γ, 2γ, ...), modelling non-constant disposal cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ClusteringError, ValidationError
from repro.graph.clustering import balanced_bfs_partition, validate_partition
from repro.graph.digraph import DiGraph
from repro.graph.traversal import bfs_distances
from repro.snd.ground import DEFAULT_MAX_COST
from repro.utils.rng import as_rng

__all__ = ["BankAllocation", "allocate_banks"]


@dataclass(frozen=True)
class BankAllocation:
    """A fixed bank layout: bin clusters plus per-bank ground distances."""

    clusters: tuple
    gammas: tuple
    n_banks: int

    def __post_init__(self) -> None:
        if self.n_banks < 1:
            raise ValidationError(f"n_banks must be >= 1, got {self.n_banks}")
        if len(self.clusters) != len(self.gammas):
            raise ValidationError("clusters and gammas must have equal length")
        for ci, g in enumerate(self.gammas):
            g = np.asarray(g)
            if g.shape != (self.n_banks,):
                raise ValidationError(
                    f"cluster {ci}: expected {self.n_banks} gammas, got {g.shape}"
                )
            if g.size and g.min() < 0:
                raise ValidationError(f"cluster {ci}: gammas must be non-negative")

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def cluster_of(self, n_nodes: int) -> np.ndarray:
        """Node -> cluster-id lookup array."""
        out = np.full(n_nodes, -1, dtype=np.int64)
        for ci, members in enumerate(self.clusters):
            out[np.asarray(members, dtype=np.int64)] = ci
        if (out < 0).any():
            raise ClusteringError("bank allocation does not cover all nodes")
        return out

    def gamma_matrix(self) -> np.ndarray:
        """``(n_clusters, n_banks)`` matrix of bank ground distances."""
        return np.vstack([np.asarray(g, dtype=np.float64) for g in self.gammas])

    def validate(self, n_nodes: int) -> None:
        """Check the clusters partition ``0..n_nodes-1``."""
        validate_partition([np.asarray(c) for c in self.clusters], n_nodes)


def _cluster_gamma(
    graph: DiGraph, members: np.ndarray, hop_cost: float, n_banks: int
) -> np.ndarray:
    """γ ladder for one cluster: hop eccentricity times a per-hop cost."""
    sub, _ = graph.to_undirected().subgraph(members)
    dist = bfs_distances(sub, 0)
    reach = dist[dist >= 0]
    ecc = int(reach.max()) if reach.size else 0
    base = float(hop_cost) * max(1, ecc)
    return base * (2.0 ** np.arange(n_banks))


def allocate_banks(
    graph: DiGraph,
    *,
    strategy: str = "cluster",
    n_clusters: int | None = None,
    n_banks: int = 1,
    gamma: float | None = None,
    max_cost: int = DEFAULT_MAX_COST,
    hop_cost: float | None = None,
    gamma_scale: float = 1.0,
    seed=None,
) -> BankAllocation:
    """Build a :class:`BankAllocation` for *graph*.

    Parameters
    ----------
    strategy:
        ``"cluster"`` (default), ``"global"``, or ``"per-bin"``.
    n_clusters:
        Cluster count for the ``"cluster"`` strategy; defaults to
        ``max(2, round(sqrt(n) / 4))``.
    gamma:
        Override the per-cluster γ base with a constant (the geometric
        ladder across ``n_banks`` still applies).
    max_cost:
        The Assumption-2 bound ``U``. When *hop_cost* is not given, γ is the
        conservative ``U * hop-eccentricity`` — guaranteed to satisfy the
        Theorem 3 metricity threshold but typically far above the actual
        intra-cluster distances.
    hop_cost:
        Per-hop cost estimate used instead of ``max_cost`` when sizing γ.
        §4 advises γ "of the same order as the ground distances within the
        cluster": setting this to the *typical* edge cost (e.g. the
        model-agnostic ``1 + c_neutral``) trades the metric guarantee for
        the sensitivity the anomaly-detection experiments rely on (a γ far
        above cluster distances degenerates EMD* into EMDα, §4).
    gamma_scale:
        Final multiplier on every γ (sensitivity knob; 1.0 = as computed).
    """
    n = graph.num_nodes
    if n == 0:
        raise ValidationError("cannot allocate banks on an empty graph")
    rng = as_rng(seed)

    if strategy == "global":
        clusters = [np.arange(n, dtype=np.int64)]
    elif strategy == "per-bin":
        clusters = [np.array([v], dtype=np.int64) for v in range(n)]
    elif strategy == "cluster":
        if n_clusters is None:
            n_clusters = max(2, int(round(np.sqrt(n) / 4)))
        n_clusters = min(n_clusters, n)
        clusters = balanced_bfs_partition(graph, n_clusters, seed=rng)
    else:
        raise ValidationError(
            f"unknown bank strategy {strategy!r}; "
            "expected 'cluster', 'global', or 'per-bin'"
        )

    scale = float(hop_cost) if hop_cost is not None else float(max_cost)
    gammas = []
    for members in clusters:
        if gamma is not None:
            base = float(gamma)
            ladder = base * (2.0 ** np.arange(n_banks))
        elif strategy == "per-bin":
            # Singleton clusters have zero diameter; γ at the local edge
            # scale keeps the bank meaningful without breaking metricity
            # (the Theorem 3 bound is 0 for singletons).
            ladder = 0.5 * scale * (2.0 ** np.arange(n_banks))
        else:
            ladder = _cluster_gamma(graph, np.asarray(members), scale, n_banks)
        gammas.append(gamma_scale * ladder)

    return BankAllocation(
        clusters=tuple(np.asarray(c, dtype=np.int64) for c in clusters),
        gammas=tuple(gammas),
        n_banks=int(n_banks),
    )
