"""Direct (unreduced) SND computation — validation oracle and Fig. 11 baseline.

This path materialises the dense ground-distance matrix (all-pairs shortest
paths over Eq. 2 edge costs) and hands the full extended transportation
problem to a general-purpose solver, exactly what the paper's CPLEX baseline
does. Super-cubic in ``n`` — usable only on small graphs, which is the point
of the comparison.
"""

from __future__ import annotations

import numpy as np

from repro.emd.emd_star import build_extension
from repro.exceptions import StateError
from repro.graph.digraph import DiGraph
from repro.opinions.models.base import OpinionModel
from repro.opinions.models.model_agnostic import ModelAgnostic
from repro.opinions.state import NEGATIVE, POSITIVE, NetworkState
from repro.snd.banks import BankAllocation, allocate_banks
from repro.snd.ground import DEFAULT_MAX_COST, GroundDistanceConfig, unreachable_cost

__all__ = ["snd_direct", "dense_ground_distance", "emd_star_term_direct"]


def dense_ground_distance(
    graph: DiGraph,
    state: NetworkState,
    opinion: int,
    *,
    config: GroundDistanceConfig,
    engine: str = "scipy",
) -> np.ndarray:
    """Full ``n x n`` ground distance ``D(state, opinion)`` with the
    unreachable clamp applied (so downstream EMD sees finite costs)."""
    edge_costs = config.edge_costs(graph, state, opinion)
    if engine == "scipy":
        from scipy.sparse.csgraph import dijkstra as sp_dijkstra

        dist = sp_dijkstra(graph.to_scipy_csr(edge_costs), directed=True)
    else:
        from repro.shortestpath.johnson import johnson_all_pairs

        dist = johnson_all_pairs(graph, weights=edge_costs)
    clamp = unreachable_cost(graph.num_nodes, config.max_cost)
    dist = np.where(np.isfinite(dist), dist, clamp)
    np.fill_diagonal(dist, 0.0)
    return dist


def emd_star_term_direct(
    graph: DiGraph,
    p_hist: np.ndarray,
    q_hist: np.ndarray,
    dense_costs: np.ndarray,
    banks: BankAllocation,
    *,
    method: str = "lp",
    bank_metric: str = "nearest",
    bank_shares: str = "mass",
) -> float:
    """One EMD* term on the full (unreduced) extension."""
    from repro.emd.base import emd_raw_cost

    ext = build_extension(
        p_hist,
        q_hist,
        dense_costs,
        clusters=list(banks.clusters),
        gammas=list(banks.gammas),
        n_banks=banks.n_banks,
        bank_metric=bank_metric,
        bank_shares=bank_shares,
    )
    if ext.total_mass <= 0.0:
        return 0.0
    return emd_raw_cost(ext.p_ext, ext.q_ext, ext.d_ext, method=method)


def snd_direct(
    graph: DiGraph,
    state_a: NetworkState,
    state_b: NetworkState,
    *,
    model: OpinionModel | None = None,
    banks: BankAllocation | None = None,
    config: GroundDistanceConfig | None = None,
    max_cost: int = DEFAULT_MAX_COST,
    method: str = "lp",
    engine: str = "scipy",
    bank_metric: str = "nearest",
    bank_shares: str = "mass",
    seed=None,
) -> float:
    """SND via the direct dense pipeline (Eq. 3 without Theorem 4).

    *method* selects the transportation solver (``"lp"`` default — the
    CPLEX stand-in; ``"ssp"``/``"simplex"`` for cross-validation).
    """
    if state_a.n != graph.num_nodes or state_b.n != graph.num_nodes:
        raise StateError("states must cover the graph's user set")
    if config is None:
        config = GroundDistanceConfig(
            model=model if model is not None else ModelAgnostic(), max_cost=max_cost
        )
    if banks is None:
        banks = allocate_banks(graph, max_cost=config.max_cost, seed=seed)

    total = 0.0
    for supplier_state, consumer_state in ((state_a, state_b), (state_b, state_a)):
        for opinion in (POSITIVE, NEGATIVE):
            dense = dense_ground_distance(
                graph, supplier_state, opinion, config=config, engine=engine
            )
            total += emd_star_term_direct(
                graph,
                supplier_state.histogram(opinion),
                consumer_state.histogram(opinion),
                dense,
                banks,
                method=method,
                bank_metric=bank_metric,
                bank_shares=bank_shares,
            )
    return 0.5 * total
