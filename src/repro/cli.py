"""Command-line interface: ``repro-snd`` / ``python -m repro.cli``.

Subcommands
-----------
``generate``
    Generate a synthetic graph + opinion series and save them (npz / store).
``distance``
    Compute SND (and optionally baselines) between two states of a saved
    series.
``distance-matrix``
    Compute the symmetric all-pairs distance matrix over a saved series
    (upper triangle evaluated once; ``--jobs`` fans out across workers).
``experiment``
    Run one of the paper's experiments end-to-end and print its table.

``--measure`` choices are derived from the live distance registry
(:func:`repro.distances.default_registry`), so newly registered measures
are reachable without touching this module.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-snd",
        description="Social Network Distance (SND) — ICDE 2017 reproduction",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic graph + series")
    gen.add_argument("--nodes", type=int, default=2000)
    gen.add_argument("--exponent", type=float, default=-2.3)
    gen.add_argument("--states", type=int, default=20)
    gen.add_argument("--seeds", type=int, default=100)
    gen.add_argument("--p-nbr", type=float, default=0.10)
    gen.add_argument("--p-ext", type=float, default=0.01)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--store", default="experiments.sqlite")
    gen.add_argument("--name", default="synthetic")

    from repro.distances import default_registry
    from repro.snd.fast import SOLVER_CHOICES

    measures = default_registry().names()

    dist = sub.add_parser("distance", help="compute distances over a saved series")
    dist.add_argument("--store", default="experiments.sqlite")
    dist.add_argument("--name", default="synthetic")
    dist.add_argument("--measure", default="snd", choices=measures)
    dist.add_argument("--clusters", type=int, default=None)
    dist.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel workers for batched measures (default: serial)",
    )
    dist.add_argument(
        "--solver",
        default="auto",
        choices=SOLVER_CHOICES,
        help="SND reduced-problem solver ('auto' selects per instance)",
    )
    dist.add_argument(
        "--window",
        type=int,
        default=None,
        help="incremental sliding-window evaluation: process the series in "
        "overlapping windows of this many states, reusing previously "
        "solved transitions (identical values; SND only)",
    )

    dmat = sub.add_parser(
        "distance-matrix",
        help="compute the all-pairs distance matrix over a saved series",
    )
    dmat.add_argument("--store", default="experiments.sqlite")
    dmat.add_argument("--name", default="synthetic")
    dmat.add_argument("--measure", default="snd", choices=measures)
    dmat.add_argument("--clusters", type=int, default=None)
    dmat.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel workers for batched measures (default: serial)",
    )
    dmat.add_argument(
        "--solver",
        default="auto",
        choices=SOLVER_CHOICES,
        help="SND reduced-problem solver ('auto' selects per instance)",
    )
    dmat.add_argument(
        "--output",
        default=None,
        help="save the matrix to this .npy file instead of printing it",
    )

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument(
        "name",
        choices=["fig5", "fig7", "fig8", "fig10", "table1"],
        help="experiment id from DESIGN.md",
    )
    exp.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.graph.generators import powerlaw_configuration_graph
    from repro.opinions.dynamics import generate_series
    from repro.store import ExperimentStore

    graph = powerlaw_configuration_graph(
        args.nodes, args.exponent, k_min=2, seed=args.seed
    )
    series = generate_series(
        graph,
        args.states,
        n_seeds=args.seeds,
        p_nbr=args.p_nbr,
        p_ext=args.p_ext,
        candidate_fraction=0.05,
        seed=args.seed,
    )
    with ExperimentStore(args.store) as store:
        store.save_graph(args.name, graph)
        store.save_series(args.name, "series", series)
    print(
        f"saved graph ({graph.num_nodes} nodes, {graph.num_edges} edges) and "
        f"{len(series)}-state series as {args.name!r} in {args.store}"
    )
    return 0


def _load_context(args: argparse.Namespace):
    from repro.distances import DistanceContext
    from repro.store import ExperimentStore

    with ExperimentStore(args.store) as store:
        graph = store.load_graph(args.name)
        series = store.load_series(args.name, "series")
    context = DistanceContext(graph=graph)
    if args.measure == "snd":
        context.ensure_snd(
            n_clusters=args.clusters, seed=0, solver=getattr(args, "solver", "auto")
        )
    return series, context


def _cmd_distance(args: argparse.Namespace) -> int:
    from repro.distances import default_registry

    series, context = _load_context(args)
    values = default_registry().series(
        args.measure, series, context, jobs=args.jobs, window=args.window
    )
    print(f"# {args.measure} distances between adjacent states")
    for t, v in enumerate(values):
        print(f"{t:4d} -> {t + 1:4d}: {v:.6g}")
    if args.window is not None and context.snd is not None:
        tc = context.snd.transition_cache
        print(
            f"# sliding window of {args.window} states: "
            f"{tc.fresh} transitions solved, {tc.reused} reused from cache"
        )
    return 0


def _cmd_distance_matrix(args: argparse.Namespace) -> int:
    from repro.distances import default_registry

    series, context = _load_context(args)
    matrix = default_registry().pairwise(args.measure, series, context, jobs=args.jobs)
    if args.output:
        np.save(args.output, matrix)
        print(
            f"saved {matrix.shape[0]}x{matrix.shape[1]} {args.measure} "
            f"matrix to {args.output}"
        )
    else:
        print(f"# {args.measure} all-pairs distance matrix")
        for row in matrix:
            print("  ".join(f"{v:10.6g}" for v in row))
    return 0


_EXPERIMENT_MODULES = {
    "fig5": "bench_fig05_cluster_intuition",
    "fig7": "bench_fig07_anomaly_series",
    "fig8": "bench_fig08_roc",
    "fig10": "bench_fig10_model_sensitivity",
    "table1": "bench_table1_prediction",
}


def _find_benchmarks_dir():
    """Locate the benchmarks/ directory (cwd first, then the repo layout
    relative to this file for editable installs)."""
    from pathlib import Path

    candidates = [
        Path.cwd() / "benchmarks",
        Path(__file__).resolve().parents[2] / "benchmarks",
    ]
    for candidate in candidates:
        if (candidate / "common.py").exists():
            return candidate
    return None


def _cmd_experiment(args: argparse.Namespace) -> int:
    # The benchmark modules double as runnable experiment harnesses.
    bench_dir = _find_benchmarks_dir()
    if bench_dir is None:
        print(
            "error: cannot locate the benchmarks/ directory; run from the "
            "repository root",
            file=sys.stderr,
        )
        return 1
    sys.path.insert(0, str(bench_dir))
    import importlib

    module = importlib.import_module(_EXPERIMENT_MODULES[args.name])
    module.run_experiment(verbose=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    np.set_printoptions(precision=4, suppress=True)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "distance":
        return _cmd_distance(args)
    if args.command == "distance-matrix":
        return _cmd_distance_matrix(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
