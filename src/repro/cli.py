"""Command-line interface: ``repro-snd`` / ``python -m repro.cli``.

Subcommands
-----------
``generate``
    Generate a synthetic graph + opinion series and save them (npz / store).
``distance``
    Compute SND (and optionally baselines) between two states of a saved
    series.
``distance-matrix``
    Compute the symmetric all-pairs distance matrix over a saved series
    (upper triangle evaluated once; ``--jobs`` fans out across workers).
``watch``
    Stream a saved series state-by-state through the persistent
    :class:`~repro.snd.engine.SNDEngine`, scoring each transition with the
    online anomaly detector as it arrives (§6.2 as an online workload).
``corpus``
    Build, incrementally extend, and query a persisted state corpus with
    its pairwise SND matrix (§9 metric-space workloads): ``corpus build``,
    ``corpus extend`` (solves only the new pairs), ``corpus query``.
``serve``
    Run the long-lived HTTP distance service
    (:mod:`repro.serve.http`) over the store — the same
    :class:`~repro.serve.service.SNDService` the commands above use.
``bakeoff``
    Head-to-head of SND vs the scalar polarization baselines (anomaly
    ROC + prediction accuracy over k-pole synthetic regimes and the
    simulated Twitter pipeline — :mod:`repro.analysis.bakeoff`).
``experiment``
    Run one of the paper's experiments end-to-end and print its table.

``distance`` / ``distance-matrix`` accept ``--save`` to persist results
into the experiment store instead of stdout-only output, and every SND
command accepts ``--cache-stats`` to print the unified cache hierarchy's
counters (:meth:`repro.snd.cache.CacheManager.stats`).

``--measure`` choices are derived from the live distance registry
(:func:`repro.distances.default_registry`), so newly registered measures
are reachable without touching this module.

All distance subcommands are thin clients of
:class:`~repro.serve.service.SNDService` — the exact code path the HTTP
server runs — so every evaluation routes through the engine's
:class:`~repro.snd.scheduler.PairScheduler` while the printed output
stays bit-identical to the historical per-subcommand plumbing.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-snd",
        description="Social Network Distance (SND) — ICDE 2017 reproduction",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic graph + series")
    gen.add_argument("--nodes", type=int, default=2000)
    gen.add_argument("--exponent", type=float, default=-2.3)
    gen.add_argument("--states", type=int, default=20)
    gen.add_argument("--seeds", type=int, default=100)
    gen.add_argument("--p-nbr", type=float, default=0.10)
    gen.add_argument("--p-ext", type=float, default=0.01)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--store", default="experiments.sqlite")
    gen.add_argument("--name", default="synthetic")

    from repro.distances import default_registry
    from repro.snd.fast import SOLVER_CHOICES

    measures = default_registry().names()

    dist = sub.add_parser("distance", help="compute distances over a saved series")
    dist.add_argument("--store", default="experiments.sqlite")
    dist.add_argument("--name", default="synthetic")
    dist.add_argument("--measure", default="snd", choices=measures)
    dist.add_argument("--clusters", type=int, default=None)
    dist.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel workers for batched measures (default: serial)",
    )
    dist.add_argument(
        "--solver",
        default="auto",
        choices=SOLVER_CHOICES,
        help="SND reduced-problem solver ('auto' selects per instance; 'network-simplex' warm-starts repeat solves from cached bases)",
    )
    dist.add_argument(
        "--window",
        type=int,
        default=None,
        help="incremental sliding-window evaluation: process the series in "
        "overlapping windows of this many states, reusing previously "
        "solved transitions (identical values; SND only)",
    )
    dist.add_argument(
        "--save",
        action="store_true",
        help="persist the computed distance series into the store's "
        "distance_runs table (keyed to the saved series) instead of "
        "stdout-only output",
    )
    dist.add_argument(
        "--cache-stats",
        action="store_true",
        help="print the SND cache hierarchy's hit/miss/eviction counters",
    )

    dmat = sub.add_parser(
        "distance-matrix",
        help="compute the all-pairs distance matrix over a saved series",
    )
    dmat.add_argument("--store", default="experiments.sqlite")
    dmat.add_argument("--name", default="synthetic")
    dmat.add_argument("--measure", default="snd", choices=measures)
    dmat.add_argument("--clusters", type=int, default=None)
    dmat.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel workers for batched measures (default: serial)",
    )
    dmat.add_argument(
        "--solver",
        default="auto",
        choices=SOLVER_CHOICES,
        help="SND reduced-problem solver ('auto' selects per instance; 'network-simplex' warm-starts repeat solves from cached bases)",
    )
    dmat.add_argument(
        "--output",
        default=None,
        help="save the matrix to this .npy file instead of printing it",
    )
    dmat.add_argument(
        "--save",
        default=None,
        metavar="CORPUS",
        help="persist the states + matrix into the store as a named corpus "
        "(extendable later with 'corpus extend')",
    )
    dmat.add_argument(
        "--cache-stats",
        action="store_true",
        help="print the SND cache hierarchy's hit/miss/eviction counters",
    )

    watch = sub.add_parser(
        "watch",
        help="stream a saved series through the persistent engine with "
        "online anomaly detection",
    )
    watch.add_argument("--store", default="experiments.sqlite")
    watch.add_argument("--name", default="synthetic")
    watch.add_argument("--clusters", type=int, default=None)
    watch.add_argument("--solver", default="auto", choices=SOLVER_CHOICES)
    watch.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="engine worker count (default: auto — serial on 1-CPU hosts)",
    )
    watch.add_argument(
        "--window",
        type=int,
        default=10,
        help="sliding window of recent distances maintained by the stream",
    )
    watch.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="fixed anomaly threshold (default: causal mean + 2*std)",
    )
    watch.add_argument("--cache-stats", action="store_true")

    corpus = sub.add_parser(
        "corpus",
        help="build / extend / query a persisted state corpus (pairwise "
        "SND matrix maintained incrementally)",
    )
    csub = corpus.add_subparsers(dest="corpus_command", required=True)

    def _corpus_common(p):
        p.add_argument("--store", default="experiments.sqlite")
        p.add_argument("--name", default="synthetic")
        p.add_argument("--corpus", default="corpus", help="corpus name in the store")
        p.add_argument("--clusters", type=int, default=None)
        p.add_argument("--solver", default="auto", choices=SOLVER_CHOICES)
        p.add_argument("--jobs", type=int, default=None)
        p.add_argument("--cache-stats", action="store_true")

    cbuild = csub.add_parser(
        "build", help="build a corpus from the saved series' states"
    )
    _corpus_common(cbuild)
    cbuild.add_argument(
        "--first",
        type=int,
        default=None,
        help="use only the first K series states (default: all)",
    )

    cextend = csub.add_parser(
        "extend",
        help="append further series states, solving only the new pairs",
    )
    _corpus_common(cextend)
    cextend.add_argument(
        "--take",
        type=int,
        default=1,
        help="number of next series states to append (default: 1)",
    )

    cquery = csub.add_parser(
        "query", help="nearest corpus members to one series state"
    )
    _corpus_common(cquery)
    cquery.add_argument(
        "--state", type=int, required=True, help="series state index to query"
    )
    cquery.add_argument("-k", type=int, default=3, help="neighbours to report")

    serve = sub.add_parser(
        "serve",
        help="run the long-lived HTTP distance service over the store",
    )
    serve.add_argument("--store", default="experiments.sqlite")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="TCP port to bind (0 picks a free port and prints it)",
    )
    serve.add_argument("--clusters", type=int, default=None)
    serve.add_argument("--solver", default="auto", choices=SOLVER_CHOICES)
    serve.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="engine worker count per shard (default: auto)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help="scheduler backpressure bound: max unique pairs queued or "
        "solving at once (default: %(default)s -> library default)",
    )
    serve.add_argument(
        "--client-max-pending",
        type=int,
        default=None,
        help="per-client fairness quota: max pending pairs one X-Client "
        "identity may hold (scaled by its priority class); over-quota "
        "requests get HTTP 429 (default: no per-client cap)",
    )
    serve.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        help="cache hierarchy memory budget in bytes (default: unbounded)",
    )
    serve.add_argument(
        "--no-persist",
        action="store_true",
        help="disable spilling the transition cache to the store "
        "(warm restarts will re-solve)",
    )
    serve.add_argument(
        "--flush-interval",
        type=float,
        default=None,
        help="seconds between periodic transition-cache flushes to the "
        "store (default: 30)",
    )
    serve.add_argument(
        "--client",
        default=None,
        help="default client identity for requests without an X-Client "
        "header (default: anonymous — exempt from per-client quotas)",
    )
    serve.add_argument(
        "--priority",
        default=None,
        choices=["low", "normal", "high"],
        help="default priority class for requests without an X-Priority "
        "header (default: normal)",
    )
    serve.add_argument(
        "--hybrid-cells",
        type=int,
        default=None,
        help="cost-matrix cell threshold steering auto solver selection "
        "toward the sinkhorn-hybrid tier (default: library auto)",
    )

    bake = sub.add_parser(
        "bakeoff",
        help="SND vs scalar polarization measures: anomaly ROC + "
        "prediction over k-pole regimes and the Twitter pipeline",
    )
    bake.add_argument(
        "--measures",
        nargs="+",
        default=None,
        metavar="MEASURE",
        help="measures to compare (default: snd esp disagreement "
        "bimodality hamming)",
    )
    bake.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="synthetic regime size before giant-component extraction "
        "(default: stock regimes)",
    )
    bake.add_argument(
        "--states",
        type=int,
        default=None,
        help="states per synthetic regime (default: stock regimes)",
    )
    bake.add_argument(
        "--no-twitter",
        action="store_true",
        help="skip the simulated-Twitter leg (synthetic regimes only)",
    )
    bake.add_argument(
        "--twitter-users",
        type=int,
        default=None,
        help="user count for the Twitter leg (default: paper scale)",
    )
    bake.add_argument("--targets", type=int, default=10)
    bake.add_argument("--window", type=int, default=3)
    bake.add_argument("--repeats", type=int, default=3)
    bake.add_argument("--assignments", type=int, default=40)
    bake.add_argument("--seed", type=int, default=7)
    bake.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the full result tree to this JSON file",
    )

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument(
        "name",
        choices=["fig5", "fig7", "fig8", "fig10", "table1"],
        help="experiment id from DESIGN.md",
    )
    exp.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.graph.generators import powerlaw_configuration_graph
    from repro.opinions.dynamics import generate_series
    from repro.store import ExperimentStore

    graph = powerlaw_configuration_graph(
        args.nodes, args.exponent, k_min=2, seed=args.seed
    )
    series = generate_series(
        graph,
        args.states,
        n_seeds=args.seeds,
        p_nbr=args.p_nbr,
        p_ext=args.p_ext,
        candidate_fraction=0.05,
        seed=args.seed,
    )
    with ExperimentStore(args.store) as store:
        store.save_graph(args.name, graph)
        store.save_series(args.name, "series", series)
    print(
        f"saved graph ({graph.num_nodes} nodes, {graph.num_edges} edges) and "
        f"{len(series)}-state series as {args.name!r} in {args.store}"
    )
    return 0


def _make_service(args: argparse.Namespace):
    """The one-shot :class:`~repro.serve.service.SNDService` a CLI
    invocation runs against — the same class `repro-snd serve` keeps
    alive, so both fronts share one scheduler-routed code path."""
    from repro.serve import EngineConfig, SNDService

    config = EngineConfig(
        clusters=getattr(args, "clusters", None),
        solver=getattr(args, "solver", "auto"),
        jobs="auto" if getattr(args, "jobs", None) is None else args.jobs,
        # One-shot CLI runs never outlive the process; spilling the
        # transition cache on every invocation would thrash the store.
        persist_transitions=False,
    )
    return SNDService(args.store, config=config)


def _print_cache_stats(
    stats: dict | None, measures: dict[str, int] | None = None
) -> None:
    if measures:
        joined = "  ".join(
            f"{name}={count}" for name, count in sorted(measures.items())
        )
        print(f"# measure requests: {joined}")
    if stats is None:
        print("# cache stats: no SND instance was used")
        return
    print("# cache stats (unified hierarchy)")
    for layer in ("ground", "rows", "transitions", "bases"):
        s = stats[layer]
        extra = (
            f" (exact={s['exact_hits']} reverse={s['reverse_hits']} "
            f"supplier={s['supplier_hits']})"
            if layer == "bases"
            else ""
        )
        print(
            f"#   {layer:11s} hits={s['hits']} misses={s['misses']} "
            f"builds={s['builds']} evictions={s['evictions']} "
            f"size={s['size']}/{s['max_size']} bytes={s['nbytes']}{extra}"
        )
    print(
        f"#   total bytes={stats['total_nbytes']} "
        f"budget={stats['memory_budget']}"
    )


def _cmd_distance(args: argparse.Namespace) -> int:
    service = _make_service(args)
    values = service.series_distances(
        args.name, measure=args.measure, jobs=args.jobs, window=args.window
    )
    context = service.shard(args.name).context
    print(f"# {args.measure} distances between adjacent states")
    for t, v in enumerate(values):
        print(f"{t:4d} -> {t + 1:4d}: {v:.6g}")
    if args.window is not None and context.snd is not None:
        tc = context.snd.transition_cache
        print(
            f"# sliding window of {args.window} states: "
            f"{tc.fresh} transitions solved, {tc.reused} reused from cache"
        )
    if args.save:
        from repro.store import ExperimentStore

        with ExperimentStore(args.store) as store:
            sid = store.series_id(args.name, "series")
            for t, v in enumerate(values):
                store.record_distance(sid, args.measure, t, t + 1, float(v))
        print(
            f"# saved {len(values)} {args.measure} rows to distance_runs "
            f"(series_id={sid}) in {args.store}"
        )
    if args.cache_stats:
        _print_cache_stats(
            service.cache_stats(args.name), service.measure_requests()
        )
    return 0


def _cmd_distance_matrix(args: argparse.Namespace) -> int:
    service = _make_service(args)
    matrix = service.matrix(args.name, measure=args.measure, jobs=args.jobs)
    series = service.shard(args.name).series
    if args.output:
        np.save(args.output, matrix)
        print(
            f"saved {matrix.shape[0]}x{matrix.shape[1]} {args.measure} "
            f"matrix to {args.output}"
        )
    else:
        print(f"# {args.measure} all-pairs distance matrix")
        for row in matrix:
            print("  ".join(f"{v:10.6g}" for v in row))
    if args.save:
        from repro.store import ExperimentStore

        with ExperimentStore(args.store) as store:
            store.save_corpus(args.name, args.save, series, matrix)
        print(
            f"# saved {matrix.shape[0]}-state corpus {args.save!r} "
            f"({args.measure} matrix) to {args.store}"
        )
    if args.cache_stats:
        _print_cache_stats(
            service.cache_stats(args.name), service.measure_requests()
        )
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    service = _make_service(args)
    shard = service.shard(args.name)
    flagged: list[int] = []
    print(
        f"# watching {len(shard.series)} states (window={args.window}); "
        "scores lag one state (the spike score needs the right neighbour)"
    )
    with service:
        updates = service.watch(
            args.name, window=args.window, threshold=args.threshold, jobs=args.jobs
        )
        for update in updates:
            parts = [f"t={update.index:4d}"]
            if update.distance is not None:
                parts.append(f"d={update.distance:.6g}")
            if update.scored is not None:
                s = update.scored
                parts.append(
                    f"| transition {s.index}: score={s.score:+.4f} "
                    f"thr={s.threshold:.4f}"
                )
                if s.flagged:
                    flagged.append(s.index)
                    parts.append("*** ANOMALY")
            print("  ".join(parts))
        engine = shard.engine()
        transitions = engine.caches.transitions
        print(
            f"# {transitions.fresh} transitions solved, "
            f"{transitions.reused} reused from cache; "
            f"flagged: {flagged if flagged else 'none'}"
        )
        if args.cache_stats:
            _print_cache_stats(engine.caches.stats(), service.measure_requests())
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    service = _make_service(args)
    shard = service.shard(args.name)
    with service:
        if args.corpus_command == "build":
            result = service.corpus_build(
                args.name, args.corpus, first=args.first, jobs=args.jobs
            )
            print(
                f"built corpus {args.corpus!r}: {result['n_states']} states, "
                f"{result['pairs_solved']} pairs solved, "
                f"saved to {args.store}"
            )
        elif args.corpus_command == "extend":
            result = service.corpus_extend(
                args.name, args.corpus, take=args.take, jobs=args.jobs
            )
            if result["added"] == 0:
                print(
                    f"corpus {args.corpus!r} already covers all "
                    f"{result['series_states']} series states; nothing to extend"
                )
                return 0
            k, old_n = result["added"], result["old_n"]
            print(
                f"extended corpus {args.corpus!r} by {k} states "
                f"({old_n} -> {result['n_states']}): solved {result['solved']} "
                f"new pairs (k*N + k*(k-1)/2 = {k * old_n + k * (k - 1) // 2}), "
                f"reused {old_n * (old_n - 1) // 2} existing"
            )
        else:  # query
            if not 0 <= args.state < len(shard.series):
                print(
                    f"error: --state must be in [0, {len(shard.series) - 1}]",
                    file=sys.stderr,
                )
                return 1
            neighbours = service.corpus_query(
                args.name, args.corpus, args.state, k=args.k, jobs=args.jobs
            )
            print(
                f"# {len(neighbours)} nearest corpus members to series "
                f"state {args.state}"
            )
            for rank, (idx, dist) in enumerate(neighbours):
                print(f"{rank + 1:3d}. corpus[{idx}]  d={dist:.6g}")
        if args.cache_stats:
            _print_cache_stats(
                shard.engine().caches.stats(), service.measure_requests()
            )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import EngineConfig, SNDService
    from repro.serve.http import serve_forever

    config = EngineConfig(
        clusters=args.clusters,
        solver=args.solver,
        jobs="auto" if args.jobs is None else args.jobs,
        max_pending=args.max_pending,
        client_max_pending=args.client_max_pending,
        memory_budget=args.memory_budget,
        persist_transitions=not args.no_persist,
        client=args.client,
        priority="normal" if args.priority is None else args.priority,
        hybrid_cells="auto" if args.hybrid_cells is None else args.hybrid_cells,
    )
    if args.flush_interval is not None:
        config = config.replace(flush_interval=args.flush_interval)
    service = SNDService(args.store, config=config)
    return serve_forever(service, host=args.host, port=args.port)


def _cmd_bakeoff(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.bakeoff import (
        DEFAULT_MEASURES,
        default_regimes,
        run_bakeoff,
    )

    measures = args.measures if args.measures else list(DEFAULT_MEASURES)
    regimes = default_regimes(n_nodes=args.nodes, n_states=args.states)
    results = run_bakeoff(
        measures=measures,
        regimes=regimes,
        include_twitter=not args.no_twitter,
        twitter_users=args.twitter_users,
        n_targets=args.targets,
        window=args.window,
        n_repeats=args.repeats,
        n_assignments=args.assignments,
        seed=args.seed,
        progress=lambda line: print(f"# {line}", file=sys.stderr),
    )
    header = (
        f"{'regime':16s} {'measure':14s} {'auc':>6s} "
        f"{'tpr@0.3':>8s} {'acc%':>6s} {'±':>5s}"
    )
    print(header)
    print("-" * len(header))
    for regime_name, entry in results["regimes"].items():
        for measure in results["measures"]:
            anomaly = entry["anomaly"][measure]
            prediction = entry["prediction"][measure]
            print(
                f"{regime_name:16s} {measure:14s} {anomaly['auc']:6.3f} "
                f"{anomaly['tpr_at_fpr_0.3']:8.3f} "
                f"{prediction['accuracy_mean']:6.1f} "
                f"{prediction['accuracy_std']:5.1f}"
            )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"# wrote full results to {args.json}", file=sys.stderr)
    return 0


_EXPERIMENT_MODULES = {
    "fig5": "bench_fig05_cluster_intuition",
    "fig7": "bench_fig07_anomaly_series",
    "fig8": "bench_fig08_roc",
    "fig10": "bench_fig10_model_sensitivity",
    "table1": "bench_table1_prediction",
}


def _find_benchmarks_dir():
    """Locate the benchmarks/ directory (cwd first, then the repo layout
    relative to this file for editable installs)."""
    from pathlib import Path

    candidates = [
        Path.cwd() / "benchmarks",
        Path(__file__).resolve().parents[2] / "benchmarks",
    ]
    for candidate in candidates:
        if (candidate / "common.py").exists():
            return candidate
    return None


def _cmd_experiment(args: argparse.Namespace) -> int:
    # The benchmark modules double as runnable experiment harnesses.
    bench_dir = _find_benchmarks_dir()
    if bench_dir is None:
        print(
            "error: cannot locate the benchmarks/ directory; run from the "
            "repository root",
            file=sys.stderr,
        )
        return 1
    sys.path.insert(0, str(bench_dir))
    import importlib

    module = importlib.import_module(_EXPERIMENT_MODULES[args.name])
    module.run_experiment(verbose=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    np.set_printoptions(precision=4, suppress=True)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "distance":
        return _cmd_distance(args)
    if args.command == "distance-matrix":
        return _cmd_distance_matrix(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "corpus":
        return _cmd_corpus(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "bakeoff":
        return _cmd_bakeoff(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
