"""One typed configuration object for the whole serving stack.

Before this module, the construction knobs of the SND serving tier were
spread as keyword sprawl across four layers — :class:`~repro.snd.snd.SND`
(``n_clusters`` / ``solver`` / ``seed``), :class:`~repro.snd.engine.SNDEngine`
(``jobs`` / ``executor`` / ``use_row_cache`` / ``use_basis_cache`` /
``max_pending``), :class:`~repro.snd.scheduler.PairScheduler`
(``max_pending`` / ``client_max_pending``), and
:class:`~repro.serve.service.SNDService` (all of the above again) — so
every front (CLI flags, HTTP server, benchmarks) re-spelled the same
plumbing and drifted independently.

:class:`EngineConfig` is the single typed source of truth.  It is a plain
frozen-ish dataclass (fields are mutable for builder convenience, but the
service copies what it needs at construction) with:

* :meth:`EngineConfig.from_mapping` — build from any mapping (parsed CLI
  ``vars(args)``, a JSON body, a config file), ignoring unknown keys by
  default so one mapping can feed several consumers;
* :meth:`EngineConfig.to_dict` — the JSON-ready echo embedded in
  ``SNDService.stats()["config"]`` and benchmark output;
* validation in ``__post_init__`` with the library's
  :class:`~repro.exceptions.ValidationError`, so a bad knob fails at
  configuration time, not on the first solve.

Legacy keyword arguments on :class:`~repro.serve.service.SNDService`
keep working through a shim that folds them into an ``EngineConfig`` and
emits a :class:`DeprecationWarning` (tested in
``tests/serve/test_config.py``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Mapping

from repro.exceptions import ValidationError
from repro.snd.scheduler import PRIORITY_WEIGHTS as PRIORITY_CLASSES

__all__ = ["EngineConfig", "PRIORITY_CLASSES", "DEFAULT_FLUSH_INTERVAL"]

#: Default seconds between periodic transition-cache flushes of a serving
#: process (``repro-snd serve``).  One-shot CLI commands flush on close.
DEFAULT_FLUSH_INTERVAL = 30.0


@dataclass
class EngineConfig:
    """Typed construction knobs for SND serving, CLI, and engine use.

    Parameters mirror the historical keyword arguments one-to-one; see
    each consumer's docstring for exact semantics.  Grouped by layer:

    SND construction — ``clusters``, ``solver``, ``seed``,
    ``hybrid_cells`` (the ``solver="auto"`` escalation threshold to the
    approximate tier; ``"auto"`` keeps the library default,
    ``None`` disables escalation entirely).

    Engine — ``jobs``, ``executor``, ``use_row_cache``,
    ``use_basis_cache``, ``memory_budget`` (shared cache budget in bytes).

    Scheduler — ``max_pending`` (global backpressure bound;
    ``None`` → library default), ``client_max_pending`` (per-client
    pending quota; ``None`` disables fairness caps).

    Client identity — ``client`` / ``priority``: the identity one-shot
    CLI invocations present to their in-process scheduler (HTTP clients
    present theirs per request via ``X-Client`` / ``X-Priority``).

    Persistence — ``persist_transitions`` (spill the transition cache to
    the store's ``transition_cache`` table and warm it back on start),
    ``flush_interval`` (seconds between periodic server-side flushes).
    """

    clusters: int | None = None
    solver: str = "auto"
    seed: int = 0
    hybrid_cells: "int | str | None" = "auto"

    jobs: "int | str | None" = "auto"
    executor: str = "process"
    use_row_cache: bool = True
    use_basis_cache: "bool | str" = "auto"
    memory_budget: int | None = None

    max_pending: int | None = None
    client_max_pending: int | None = None

    client: str | None = None
    priority: str = "normal"

    persist_transitions: bool = True
    flush_interval: float = field(default=DEFAULT_FLUSH_INTERVAL)

    def __post_init__(self) -> None:
        if self.executor not in ("process", "thread"):
            raise ValidationError(
                f"executor must be 'process' or 'thread', got {self.executor!r}"
            )
        if self.priority not in PRIORITY_CLASSES:
            raise ValidationError(
                f"priority must be one of {sorted(PRIORITY_CLASSES)}, "
                f"got {self.priority!r}"
            )
        if self.max_pending is not None and self.max_pending < 1:
            raise ValidationError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.client_max_pending is not None and self.client_max_pending < 1:
            raise ValidationError(
                f"client_max_pending must be >= 1, got {self.client_max_pending}"
            )
        if self.memory_budget is not None and self.memory_budget < 1:
            raise ValidationError(
                f"memory_budget must be >= 1 byte, got {self.memory_budget}"
            )
        if self.flush_interval <= 0:
            raise ValidationError(
                f"flush_interval must be > 0 seconds, got {self.flush_interval}"
            )
        if self.hybrid_cells is not None and self.hybrid_cells != "auto":
            if not isinstance(self.hybrid_cells, int) or self.hybrid_cells < 1:
                raise ValidationError(
                    f"hybrid_cells must be a positive integer, None, or "
                    f"'auto', got {self.hybrid_cells!r}"
                )

    # ------------------------------------------------------------------ #
    # Construction / export
    # ------------------------------------------------------------------ #

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        return tuple(f.name for f in fields(cls))

    @classmethod
    def from_mapping(
        cls, mapping: Mapping[str, Any], *, strict: bool = False
    ) -> "EngineConfig":
        """Build a config from any mapping, skipping ``None``-valued keys
        (so ``vars(args)`` with unset CLI flags falls back to defaults).

        Unknown keys are ignored unless *strict* — one parsed-args
        namespace can therefore feed this constructor directly.
        """
        known = set(cls.field_names())
        unknown = set(mapping) - known
        if strict and unknown:
            raise ValidationError(
                f"unknown EngineConfig keys: {sorted(unknown)}"
            )
        kwargs = {
            k: v for k, v in mapping.items() if k in known and v is not None
        }
        return cls(**kwargs)

    def to_dict(self) -> dict:
        """JSON-ready echo of every field (the ``stats()['config']`` and
        benchmark-output surface)."""
        return asdict(self)

    def replace(self, **overrides) -> "EngineConfig":
        """A copy with *overrides* applied (re-validated)."""
        merged = {**self.to_dict(), **overrides}
        return EngineConfig(**merged)

    # ------------------------------------------------------------------ #
    # Per-layer keyword views
    # ------------------------------------------------------------------ #

    def snd_kwargs(self) -> dict:
        """Keywords for :class:`~repro.snd.snd.SND` construction (via
        ``DistanceContext.ensure_snd``)."""
        kwargs = {
            "n_clusters": self.clusters,
            "seed": self.seed,
            "solver": self.solver,
        }
        if self.hybrid_cells != "auto":
            kwargs["hybrid_cells"] = self.hybrid_cells
        return kwargs

    def engine_kwargs(self) -> dict:
        """Keywords for :class:`~repro.snd.engine.SNDEngine` construction
        (``max_pending`` falls back to the library default when unset)."""
        from repro.snd.scheduler import DEFAULT_MAX_PENDING

        return {
            "jobs": self.jobs if self.jobs is not None else None,
            "executor": self.executor,
            "use_row_cache": self.use_row_cache,
            "use_basis_cache": self.use_basis_cache,
            "max_pending": (
                DEFAULT_MAX_PENDING if self.max_pending is None else self.max_pending
            ),
            "client_max_pending": self.client_max_pending,
        }
