"""The serving tier: the SND stack as a long-lived distance service.

The paper positions SND as a distance for *monitoring* polar opinion
dynamics — anomaly detection and prediction over live network states
(§6.2) and metric-space queries against growing corpora (§9) — which is
a serving workload, not a batch script.  This package exposes the
scheduler-backed engine stack behind two fronts:

:class:`~repro.serve.service.SNDService`
    The in-process service: named graphs/series/corpora loaded from an
    :class:`~repro.store.ExperimentStore`, one lazily created engine
    shard per graph (sharing the shared-memory state matrix and the
    unified cache hierarchy), every operation routed through the
    engine's :class:`~repro.snd.scheduler.PairScheduler`.  The CLI
    subcommands and the HTTP server are both thin clients of this class.

:mod:`repro.serve.http`
    A stdlib-asyncio HTTP/1.1 server (``repro-snd serve``) exposing the
    versioned ``/v1`` API: ``distance``, ``matrix``, ``corpus/query``,
    ``watch`` (streaming anomaly updates over a chunked NDJSON
    response), ``stats`` (cache + scheduler counters), and ``metrics``
    (Prometheus text exposition).  Backpressure surfaces as HTTP 503,
    per-client fairness rejections as HTTP 429.

Service construction is configured by one typed
:class:`~repro.serve.config.EngineConfig` object (clusters, solver,
jobs, scheduler bounds, per-client quotas, cache persistence) shared by
the CLI and the HTTP server.
"""

from repro.serve.config import EngineConfig
from repro.serve.service import EngineShard, SNDService

__all__ = ["SNDService", "EngineShard", "EngineConfig"]
