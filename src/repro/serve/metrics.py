"""Stdlib-only Prometheus metrics registry for the serving tier.

The paper's target deployment — continuous anomaly monitoring over live
opinion series (PAPER.md §VI) — is only operable if the serving process
is observable: operators need to see cache efficacy, coalescing rates,
saturation, and latency without attaching a debugger.  This module
provides that spine with zero new dependencies: a tiny metric registry
(:class:`Counter`, :class:`Gauge`, :class:`Histogram`) whose
:func:`render` emits the Prometheus *text exposition format 0.0.4*
(``# HELP`` / ``# TYPE`` lines, ``name{label="value"} sample`` rows,
cumulative ``_bucket{le=...}`` histogram rows) that any Prometheus
scraper, ``promtool``, or a human with ``curl`` can read.

The design splits metrics into two kinds:

* **Live HTTP metrics** (:class:`ServeMetrics`) — per-route request
  counters and latency histograms, recorded by the HTTP server as each
  request finishes.  These are genuine registry instruments because the
  HTTP layer is the only place the observations exist.
* **Snapshot metrics** (:func:`samples_from_stats`) — everything the
  engine stack already counts (scheduler, caches, solver metric
  families, persistence).  Rather than double-book those counters into
  registry objects (and risk drift), each scrape converts the existing
  ``SNDService.stats()`` tree into metric samples on the fly.  One
  schema therefore serves the ``/v1/metrics`` scrape, the CLI
  ``--cache-stats`` path, and benchmark JSON — they all read the same
  stats tree this module translates.

Metric naming matches the stats-tree keys (snake_case, ``_total`` suffix
on monotonic counters) so a Grafana query and a ``stats()`` lookup use
the same vocabulary; ``docs/serving.md`` carries the reference table.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Iterable, Iterator

from repro.exceptions import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "Sample",
    "ServeMetrics",
    "samples_from_stats",
    "render_samples",
    "CONTENT_TYPE",
]

#: The Content-Type a compliant scraper expects for text format 0.0.4.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default latency buckets (seconds) for HTTP request histograms: tuned
#: for a solver service whose responses range from sub-millisecond cache
#: hits to multi-second cold matrix solves.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: backslash, double
    quote, and newline must be backslash-escaped."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``, floats
    via ``repr`` (full precision), infinities as ``+Inf``/``-Inf``."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, bool):
        return "1" if value else "0"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: dict[str, str] | None) -> str:
    if not labels:
        return ""
    parts = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + parts + "}"


class Sample:
    """One exposition row: ``name{labels} value`` plus family metadata.

    ``mtype`` is the family's ``# TYPE`` (counter / gauge / histogram —
    histogram *component* rows such as ``_bucket`` carry the family name
    in ``family`` so grouping still works).
    """

    __slots__ = ("family", "name", "labels", "value", "help", "mtype")

    def __init__(
        self,
        family: str,
        name: str,
        labels: dict[str, str] | None,
        value: float,
        help: str,
        mtype: str,
    ) -> None:
        self.family = family
        self.name = name
        self.labels = labels
        self.value = value
        self.help = help
        self.mtype = mtype

    def line(self) -> str:
        return f"{self.name}{_format_labels(self.labels)} {_format_value(self.value)}"


def render_samples(samples: Iterable[Sample]) -> str:
    """Assemble exposition text: families grouped, each preceded by one
    ``# HELP`` / ``# TYPE`` pair, in first-seen order."""
    by_family: dict[str, list[Sample]] = {}
    meta: dict[str, tuple[str, str]] = {}
    for sample in samples:
        by_family.setdefault(sample.family, []).append(sample)
        meta.setdefault(sample.family, (sample.help, sample.mtype))
    out: list[str] = []
    for family, rows in by_family.items():
        help_text, mtype = meta[family]
        out.append(f"# HELP {family} {help_text}")
        out.append(f"# TYPE {family} {mtype}")
        out.extend(row.line() for row in rows)
    return "\n".join(out) + "\n"


# --------------------------------------------------------------------- #
# Live instruments
# --------------------------------------------------------------------- #


class Counter:
    """A monotonically increasing counter with optional labels.

    Label sets are materialised lazily on first increment; ``collect()``
    yields one sample per label set seen so far.
    """

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...] = ()) -> None:
        if not name.endswith("_total"):
            raise ValidationError(
                f"counter names must end in '_total', got {name!r}"
            )
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValidationError("counters can only increase")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(self._key(labels), 0.0)

    def _key(self, labels: dict[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValidationError(
                f"{self.name} expects labels {self.labelnames}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def collect(self) -> Iterator[Sample]:
        with self._lock:
            items = list(self._values.items())
        for key, value in items:
            labels = dict(zip(self.labelnames, key))
            yield Sample(self.name, self.name, labels, value, self.help, "counter")


class Gauge:
    """A value that can go up and down (queue depths, sizes, budgets)."""

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            self._values[key] = float(value)

    def collect(self) -> Iterator[Sample]:
        with self._lock:
            items = list(self._values.items())
        for key, value in items:
            labels = dict(zip(self.labelnames, key))
            yield Sample(self.name, self.name, labels, value, self.help, "gauge")


class Histogram:
    """A cumulative-bucket histogram (the Prometheus shape).

    Emits ``<name>_bucket{le="..."}`` rows (cumulative, including the
    mandatory ``le="+Inf"``), ``<name>_sum``, and ``<name>_count``.
    """

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValidationError("histograms need at least one bucket bound")
        self._lock = threading.Lock()
        # key -> (per-bucket counts, sum, count)
        self._series: dict[tuple[str, ...], list] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = [[0] * len(self.buckets), 0.0, 0]
                self._series[key] = series
            counts, _total, _n = series
            for idx, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[idx] += 1
            series[1] += float(value)
            series[2] += 1

    def collect(self) -> Iterator[Sample]:
        with self._lock:
            items = [
                (key, (list(counts), total, n))
                for key, (counts, total, n) in self._series.items()
            ]
        for key, (counts, total, n) in items:
            base = dict(zip(self.labelnames, key))
            cumulative = 0
            for idx, bound in enumerate(self.buckets):
                cumulative = counts[idx]
                yield Sample(
                    self.name,
                    f"{self.name}_bucket",
                    {**base, "le": _format_value(bound)},
                    cumulative,
                    self.help,
                    "histogram",
                )
            yield Sample(
                self.name,
                f"{self.name}_bucket",
                {**base, "le": "+Inf"},
                n,
                self.help,
                "histogram",
            )
            yield Sample(self.name, f"{self.name}_sum", base or None, total, self.help, "histogram")
            yield Sample(self.name, f"{self.name}_count", base or None, n, self.help, "histogram")


class MetricRegistry:
    """An ordered collection of instruments with one ``collect()``."""

    def __init__(self) -> None:
        self._metrics: list = []

    def register(self, metric):
        self._metrics.append(metric)
        return metric

    def counter(self, name: str, help: str, labelnames: tuple[str, ...] = ()) -> Counter:
        return self.register(Counter(name, help, labelnames))

    def gauge(self, name: str, help: str, labelnames: tuple[str, ...] = ()) -> Gauge:
        return self.register(Gauge(name, help, labelnames))

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self.register(Histogram(name, help, labelnames, buckets))

    def collect(self) -> Iterator[Sample]:
        for metric in self._metrics:
            yield from metric.collect()


# --------------------------------------------------------------------- #
# Stats-tree → samples bridge
# --------------------------------------------------------------------- #

_SCHEDULER_COUNTERS = {
    "requested": "Pair requests received by the scheduler.",
    "cache_answered": "Requests answered from the transition cache before dispatch.",
    "coalesced": "Requests attached to an existing solve of the same pair.",
    "solved": "Fresh pair solves dispatched.",
    "batches": "Chunk submissions to the engine pool.",
    "rejected": "Admissions refused by global backpressure.",
    "client_rejected": "Admissions refused by a per-client fairness quota.",
}

_SCHEDULER_GAUGES = {
    "pending": "Unique pairs currently admitted (queued or solving).",
    "peak_pending": "High-water mark of admitted pairs.",
    "max_pending": "Configured global backpressure bound.",
}

_CACHE_COUNTERS = {
    "hits": "Cache lookups answered.",
    "misses": "Cache lookups that missed.",
    "builds": "Entries computed and inserted.",
    "evictions": "Entries evicted by the LRU or the memory budget.",
}

_CACHE_GAUGES = {
    "size": "Entries currently held.",
    "max_size": "Configured entry capacity.",
    "nbytes": "Approximate bytes held.",
}

_SIMPLEX_COUNTERS = {
    "solves": "Network-simplex solves.",
    "cold_solves": "Solves started from a fresh basis.",
    "warm_solves": "Solves warm-started from a cached basis.",
    "cold_pivots": "Pivots performed by cold solves.",
    "warm_pivots": "Pivots performed by warm-started solves.",
    "warm_arcs_used": "Basis arcs successfully reused by warm starts.",
}

_SIMPLEX_GAUGES = {
    "cold_pivots_per_solve": "Mean pivots per cold solve.",
    "warm_pivots_per_solve": "Mean pivots per warm-started solve.",
    "last_pivots": "Pivots in the most recent solve.",
}

_HYBRID_COUNTERS = {
    "solves": "Hybrid-tier transport solves.",
    "screened_solves": "Solves where Sinkhorn screening reduced the support.",
}

_HYBRID_GAUGES = {
    "support_density": "Mean retained support density after screening.",
    "last_support_density": "Support density of the most recent solve.",
    "last_screen_error_bound": "A-posteriori error bound of the most recent solve.",
    "max_screen_error_bound": "Largest a-posteriori error bound observed.",
}

_PERSIST_COUNTERS = {
    "transitions_loaded": "Transition-cache entries warmed from the store.",
    "transitions_persisted": "Transition-cache entries flushed to the store.",
}


def _emit(
    out: list[Sample],
    family: str,
    source: dict,
    spec: dict[str, str],
    mtype: str,
    labels: dict[str, str] | None,
    *,
    suffix: str = "",
) -> None:
    for key, help_text in spec.items():
        if key not in source or source[key] is None:
            continue
        out.append(
            Sample(
                f"{family}_{key}{suffix}",
                f"{family}_{key}{suffix}",
                dict(labels) if labels else None,
                float(source[key]),
                help_text,
                mtype,
            )
        )


def samples_from_stats(stats: dict) -> list[Sample]:
    """Convert an ``SNDService.stats()`` tree into metric samples.

    The tree shape is ``{"store": ..., "shards": {graph: shard_stats}}``
    where each shard embeds ``engine.stats()`` (scheduler / caches /
    network_simplex / hybrid sections) once its engine exists, plus the
    persistence counters the service maintains.  A bare
    ``engine.stats()`` dict (no ``shards`` wrapper) is also accepted so
    the CLI and benchmarks can reuse the bridge for a single engine.

    Per-shard families are labelled ``graph="<name>"``; the solver metric
    families (``snd_simplex_*``, ``snd_hybrid_*``) are process-global
    (module-level singletons), so they are emitted once, unlabelled,
    from the first shard that carries them.
    """
    out: list[Sample] = []
    for measure, count in (stats.get("measures") or {}).items():
        out.append(Sample(
            "snd_measure_requests_total",
            "snd_measure_requests_total",
            {"measure": str(measure)},
            float(count),
            "Distance requests served, by registry measure (bake-off "
            "traffic observability).",
            "counter",
        ))
    shards = stats.get("shards")
    if shards is None:
        shards = {stats.get("graph", "default"): stats}
    solver_done = False
    for graph, shard in shards.items():
        labels = {"graph": str(graph)}
        sched = shard.get("scheduler")
        if sched:
            _emit(out, "snd_scheduler", sched, _SCHEDULER_COUNTERS,
                  "counter", labels, suffix="_total")
            _emit(out, "snd_scheduler", sched, _SCHEDULER_GAUGES, "gauge", labels)
            if sched.get("client_max_pending") is not None:
                out.append(Sample(
                    "snd_scheduler_client_max_pending",
                    "snd_scheduler_client_max_pending",
                    dict(labels),
                    float(sched["client_max_pending"]),
                    "Configured per-client pending quota (before priority scaling).",
                    "gauge",
                ))
            for client, rec in (sched.get("clients") or {}).items():
                clabels = {**labels, "client": str(client)}
                _emit(out, "snd_client", rec,
                      {k: v for k, v in _SCHEDULER_COUNTERS.items() if k in rec},
                      "counter", clabels, suffix="_total")
                _emit(out, "snd_client", rec,
                      {"pending": _SCHEDULER_GAUGES["pending"]},
                      "gauge", clabels)
        caches = shard.get("caches")
        if caches:
            for cache_name, cache_stats in caches.items():
                if not isinstance(cache_stats, dict):
                    continue
                clabels = {**labels, "cache": str(cache_name)}
                _emit(out, "snd_cache", cache_stats, _CACHE_COUNTERS,
                      "counter", clabels, suffix="_total")
                _emit(out, "snd_cache", cache_stats, _CACHE_GAUGES, "gauge", clabels)
            if caches.get("total_nbytes") is not None:
                out.append(Sample(
                    "snd_cache_total_nbytes", "snd_cache_total_nbytes",
                    dict(labels), float(caches["total_nbytes"]),
                    "Approximate bytes held across all caches.", "gauge",
                ))
            if caches.get("memory_budget") is not None:
                out.append(Sample(
                    "snd_cache_memory_budget_bytes", "snd_cache_memory_budget_bytes",
                    dict(labels), float(caches["memory_budget"]),
                    "Configured shared cache memory budget.", "gauge",
                ))
        for key, help_text in (
            ("pool_starts", "Worker pool cold starts."),
            ("slot_writes", "State-matrix slot writes to shared memory."),
        ):
            if shard.get(key) is not None:
                out.append(Sample(
                    f"snd_engine_{key}_total", f"snd_engine_{key}_total",
                    dict(labels), float(shard[key]),
                    help_text, "counter",
                ))
        _emit(out, "snd_persistence", shard, _PERSIST_COUNTERS,
              "counter", labels, suffix="_total")
        if not solver_done:
            simplex = shard.get("network_simplex")
            if simplex:
                _emit(out, "snd_simplex", simplex, _SIMPLEX_COUNTERS,
                      "counter", None, suffix="_total")
                _emit(out, "snd_simplex", simplex, _SIMPLEX_GAUGES, "gauge", None)
                solver_done = True
            hybrid = shard.get("hybrid")
            if hybrid:
                _emit(out, "snd_hybrid", hybrid, _HYBRID_COUNTERS,
                      "counter", None, suffix="_total")
                _emit(out, "snd_hybrid", hybrid, _HYBRID_GAUGES, "gauge", None)
                solver_done = True
    return out


# --------------------------------------------------------------------- #
# The serving-tier metrics facade
# --------------------------------------------------------------------- #

#: Known route templates; anything else is bucketed as ``other`` so a
#: path-scanning client cannot explode label cardinality.
KNOWN_ROUTES = (
    "/healthz", "/stats", "/corpora", "/metrics",
    "/distance", "/series", "/matrix", "/corpus/query", "/watch",
)


class ServeMetrics:
    """Live HTTP instruments + the scrape renderer for one server.

    The HTTP layer calls :meth:`observe_request` as each request
    completes; :meth:`render` combines the live instruments with a
    snapshot conversion of the service stats tree into one exposition
    document.
    """

    def __init__(self) -> None:
        self.registry = MetricRegistry()
        self.requests = self.registry.counter(
            "snd_http_requests_total",
            "HTTP requests served, by route and status code.",
            ("route", "status"),
        )
        self.latency = self.registry.histogram(
            "snd_http_request_duration_seconds",
            "Wall-clock HTTP request latency by route.",
            ("route",),
        )
        self.started = time.time()

    @staticmethod
    def route_bucket(path: str) -> str:
        """Collapse a request path to a bounded route label."""
        return path if path in KNOWN_ROUTES else "other"

    def observe_request(self, path: str, status: int, seconds: float) -> None:
        route = self.route_bucket(path)
        self.requests.inc(route=route, status=str(status))
        self.latency.observe(seconds, route=route)

    def render(self, service_stats: dict | None = None) -> str:
        samples: list[Sample] = [
            Sample(
                "snd_serve_uptime_seconds", "snd_serve_uptime_seconds", None,
                time.time() - self.started,
                "Seconds since the metrics facade was created.", "gauge",
            )
        ]
        samples.extend(self.registry.collect())
        if service_stats is not None:
            samples.extend(samples_from_stats(service_stats))
        return render_samples(samples)
