"""The in-process distance service: named corpora over engine shards.

:class:`SNDService` is the single implementation of every serving
operation; the ``repro-snd`` CLI subcommands and the HTTP server in
:mod:`repro.serve.http` are both thin clients of it, so a one-shot CLI
invocation and a long-lived server request run the exact same code path
(and therefore produce bit-identical values — the scheduler and engine
underneath carry the repo-wide exactness contract).

Layout
------
One :class:`EngineShard` per graph name.  A shard owns the graph, its
saved series, a :class:`~repro.distances.DistanceContext` (so non-SND
measures work too), a lazily created persistent
:class:`~repro.snd.engine.SNDEngine` sharing the SND instance's unified
cache hierarchy and shared-memory state matrix, and the corpora loaded
for that graph.  All SND work funnels through the shard engine's
:class:`~repro.snd.scheduler.PairScheduler`, which is what makes the
service safe to hammer from many threads: duplicate concurrent requests
for one pair coalesce into a single solve.

The SQLite store is opened fresh per operation (connections are pinned
to their creating thread), so service methods may run on any executor
thread.
"""

from __future__ import annotations

import threading
import warnings
from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.opinions.state import NetworkState
from repro.serve.config import EngineConfig

__all__ = ["SNDService", "EngineShard"]


class EngineShard:
    """Everything the service holds for one named graph.

    Created lazily by :meth:`SNDService.shard` on first use of the name;
    the engine (and its worker pool / shared-memory matrix) is created
    even more lazily, on the first SND operation.

    When the service config enables ``persist_transitions`` (the
    default), the first SND build warms the shard's
    :class:`~repro.snd.cache.TransitionCache` from the store's
    ``transition_cache`` table (counter-neutral seeding — ``fresh`` keeps
    counting only this process's solves), and :meth:`flush_transitions`
    spills the cache back.  A restarted server therefore answers a
    previously-served trace entirely from cache: ``solved == 0``,
    ``cache_answered == requested``.
    """

    def __init__(self, service: "SNDService", graph_name: str) -> None:
        from repro.distances import DistanceContext

        self.service = service
        self.graph_name = graph_name
        with service._open_store() as store:
            self.graph = store.load_graph(graph_name)
            self.series = store.load_series(graph_name, "series")
        self.context = DistanceContext(graph=self.graph)
        self.corpora: dict = {}
        self._engine = None
        self._lock = threading.Lock()
        self.transitions_loaded = 0
        self.transitions_persisted = 0
        self._warmed = False
        # (size, fresh) snapshot at the last flush: an unchanged cache
        # skips the store round-trip entirely.
        self._last_flush_state: tuple[int, int] | None = None

    def ensure_snd(self):
        """The shard's SND instance (created on first SND use, mirroring
        the CLI's measure-gated construction so non-SND operations never
        build one).  First creation also warms the transition cache from
        the store and applies the configured cache memory budget."""
        config = self.service.config
        snd = self.context.ensure_snd(**config.snd_kwargs())
        with self._lock:
            if not self._warmed:
                self._warmed = True
                if config.memory_budget is not None:
                    snd.caches.memory_budget = config.memory_budget
                if config.persist_transitions:
                    with self.service._open_store() as store:
                        rows = store.load_transitions(self.graph_name)
                    if rows:
                        self.transitions_loaded = snd.caches.transitions.seed_rows(rows)
                        self._last_flush_state = (
                            len(snd.caches.transitions),
                            snd.caches.transitions.fresh,
                        )
        return snd

    def engine(self, jobs=None):
        """The shard's persistent engine (created once; *jobs* only
        matters on the creating call — later calls reuse the engine and
        can cap fan-out per call through the scheduler instead)."""
        snd = self.ensure_snd()
        with self._lock:
            if self._engine is None:
                kwargs = self.service.config.engine_kwargs()
                kwargs["jobs"] = self.service.jobs if jobs is None else jobs
                self._engine = snd.create_engine(**kwargs)
            return self._engine

    def flush_transitions(self) -> int:
        """Spill the transition cache to the store (if dirty).

        Returns the number of rows written (0 when persistence is off,
        no SND instance exists yet, or nothing changed since the last
        flush — the ``(size, fresh)`` snapshot makes periodic flushing
        nearly free on an idle server).  Upsert semantics in the store
        make re-flushing overlapping snapshots idempotent.
        """
        if not self.service.config.persist_transitions:
            return 0
        snd = self.context.snd
        if snd is None or snd._caches is None:
            return 0
        transitions = snd.caches.transitions
        state = (len(transitions), transitions.fresh)
        with self._lock:
            if state == self._last_flush_state:
                return 0
            self._last_flush_state = state
        rows = transitions.export_rows()
        if not rows:
            return 0
        with self.service._open_store() as store:
            written = store.save_transitions(self.graph_name, rows)
        with self._lock:
            self.transitions_persisted += written
        return written

    def corpus(self, corpus_name: str, *, jobs=None, reload: bool = False):
        """The named corpus, loaded from the store through the shard
        engine (cached across calls unless *reload*)."""
        from repro.snd.engine import Corpus

        with self._lock:
            cached = self.corpora.get(corpus_name)
        if cached is not None and not reload:
            return cached
        engine = self.engine(jobs=SNDService._engine_jobs(jobs))
        with self.service._open_store() as store:
            corpus = Corpus.load(store, engine, self.graph_name, corpus_name)
        with self._lock:
            self.corpora[corpus_name] = corpus
        return corpus

    def stats(self) -> dict:
        """Cache + scheduler + pool counters for this shard (engine stats
        when the engine exists, bare cache stats before that)."""
        with self._lock:
            engine = self._engine
        if engine is not None:
            payload = engine.stats()
        else:
            payload = {"caches": self.context.cache_stats()}
        payload = dict(payload)
        payload["n_states"] = len(self.series)
        payload["corpora"] = sorted(self.corpora)
        payload["transitions_loaded"] = self.transitions_loaded
        payload["transitions_persisted"] = self.transitions_persisted
        return payload

    def close(self) -> None:
        self.flush_transitions()
        with self._lock:
            engine, self._engine = self._engine, None
        if engine is not None:
            engine.close()


#: Sentinel distinguishing "not passed" from explicit values in the
#: legacy-keyword shim below.
_UNSET = object()


class SNDService:
    """Named-corpus distance service over one experiment store.

    Parameters
    ----------
    store_path:
        Path of the :class:`~repro.store.ExperimentStore` holding the
        graphs, series, and corpora to serve.
    config:
        An :class:`~repro.serve.config.EngineConfig` consolidating every
        construction knob — SND (``clusters`` / ``solver`` / ``seed`` /
        ``hybrid_cells``), engine (``jobs`` / ``executor`` / cache
        toggles / ``memory_budget``), scheduler (``max_pending`` /
        ``client_max_pending``), and persistence
        (``persist_transitions`` / ``flush_interval``).  ``None`` means
        all defaults.  With ``solver="network-simplex"`` each shard's
        engine warm-starts repeat solves from its shared basis cache,
        which pays off on exactly the serving access patterns — repeated
        windows and growing corpora (see :mod:`repro.flow.network_simplex`).
    clusters / solver / jobs / seed / max_pending:
        **Deprecated** keyword spellings of the corresponding
        ``EngineConfig`` fields, kept for one release; passing any emits
        a :class:`DeprecationWarning` and they cannot be combined with
        *config*.  ``jobs=0`` remains a legacy spelling of serial at
        this boundary — the library-level
        :func:`~repro.snd.scheduler.resolve_jobs` itself rejects it.
    """

    def __init__(
        self,
        store_path: str,
        *,
        config: EngineConfig | None = None,
        clusters=_UNSET,
        solver=_UNSET,
        jobs=_UNSET,
        seed=_UNSET,
        max_pending=_UNSET,
    ) -> None:
        legacy = {
            name: value
            for name, value in (
                ("clusters", clusters),
                ("solver", solver),
                ("jobs", jobs),
                ("seed", seed),
                ("max_pending", max_pending),
            )
            if value is not _UNSET
        }
        if legacy:
            if config is not None:
                raise ValidationError(
                    f"pass configuration via config= or legacy keywords, "
                    f"not both (got config and {sorted(legacy)})"
                )
            warnings.warn(
                f"SNDService keyword arguments {sorted(legacy)} are "
                f"deprecated; pass an EngineConfig via config= instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if legacy.get("jobs") == 0:
                legacy["jobs"] = 1  # legacy spelling of serial
            # Direct construction (not from_mapping): an explicit
            # ``jobs=None`` / ``clusters=None`` must stay None, not fall
            # back to the field default.
            config = EngineConfig(**legacy)
        self.config = config if config is not None else EngineConfig()
        self.store_path = store_path
        self._shards: dict[str, EngineShard] = {}
        self._shards_lock = threading.Lock()
        # Per-measure request counters (bake-off observability): every
        # distance-serving entry point bumps its measure, so traffic mixes
        # show up in stats()/"measures" -> /v1/metrics and --cache-stats.
        self._measure_requests: dict[str, int] = {}
        self._measures_lock = threading.Lock()

    def _count_measure(self, measure: str) -> None:
        with self._measures_lock:
            self._measure_requests[measure] = (
                self._measure_requests.get(measure, 0) + 1
            )

    def measure_requests(self) -> dict[str, int]:
        """Snapshot of requests served per distance measure."""
        with self._measures_lock:
            return dict(self._measure_requests)

    # Read-only mirrors of the config fields the historical attribute
    # surface exposed (tests and callers read e.g. ``service.jobs``).
    @property
    def clusters(self):
        return self.config.clusters

    @property
    def solver(self):
        return self.config.solver

    @property
    def jobs(self):
        return self.config.jobs

    @property
    def seed(self):
        return self.config.seed

    @property
    def max_pending(self):
        from repro.snd.scheduler import DEFAULT_MAX_PENDING

        return (
            DEFAULT_MAX_PENDING
            if self.config.max_pending is None
            else self.config.max_pending
        )

    @staticmethod
    def _normalise_jobs(jobs):
        # Registry/batch spelling: None and 0 both mean serial there; the
        # CLI documented --jobs 0 as "serial, not auto", so keep that
        # working at the service boundary while the library rejects it.
        return None if jobs == 0 else jobs

    @staticmethod
    def _engine_jobs(jobs):
        # Engine-creation spelling: None means "service default", so the
        # legacy 0-means-serial must become an explicit 1 here.
        return 1 if jobs == 0 else jobs

    def _open_store(self):
        from repro.store import ExperimentStore

        return ExperimentStore(self.store_path)

    # ------------------------------------------------------------------ #
    # Shards
    # ------------------------------------------------------------------ #

    def shard(self, graph_name: str) -> EngineShard:
        """The shard for *graph_name*, loading it on first use."""
        with self._shards_lock:
            shard = self._shards.get(graph_name)
            if shard is None:
                shard = EngineShard(self, graph_name)
                self._shards[graph_name] = shard
            return shard

    def names(self) -> list[str]:
        """Graph names currently loaded as shards."""
        with self._shards_lock:
            return sorted(self._shards)

    def list_corpora(self, graph_name: str | None = None) -> list[tuple]:
        """``(graph, corpus, n_states)`` rows from the store."""
        with self._open_store() as store:
            return store.list_corpora(graph_name)

    # ------------------------------------------------------------------ #
    # Distances
    # ------------------------------------------------------------------ #

    def _prepare_measure(self, shard: EngineShard, measure: str) -> None:
        # Mirror the CLI: the SND instance exists only when the SND
        # measure is actually used (so --cache-stats can truthfully say
        # "no SND instance was used" for baselines).
        if measure == "snd":
            shard.ensure_snd()

    def series_distances(
        self,
        graph_name: str,
        *,
        measure: str = "snd",
        jobs=None,
        window: int | None = None,
    ) -> np.ndarray:
        """Adjacent-state distances over the shard's saved series."""
        from repro.distances import default_registry

        shard = self.shard(graph_name)
        self._prepare_measure(shard, measure)
        self._count_measure(measure)
        return default_registry().series(
            measure, shard.series, shard.context,
            jobs=self._normalise_jobs(jobs), window=window,
        )

    def matrix(self, graph_name: str, *, measure: str = "snd", jobs=None) -> np.ndarray:
        """All-pairs distance matrix over the shard's saved series."""
        from repro.distances import default_registry

        shard = self.shard(graph_name)
        self._prepare_measure(shard, measure)
        self._count_measure(measure)
        return default_registry().pairwise(
            measure, shard.series, shard.context, jobs=self._normalise_jobs(jobs)
        )

    def distance_pair(
        self,
        graph_name: str,
        i: int,
        j: int,
        *,
        client: str | None = None,
        priority: str | None = None,
    ) -> float:
        """SND between series states *i* and *j*, through the shard
        engine's scheduler and transition cache — the endpoint behind
        ``POST /v1/distance``, and the one that coalesces duplicate
        bursts.  *client* / *priority* identify the requester for the
        scheduler's per-client accounting and fairness quotas (the HTTP
        layer forwards ``X-Client`` / ``X-Priority`` headers here; the
        CLI forwards ``--client`` / ``--priority`` flags)."""
        shard = self.shard(graph_name)
        series = shard.series
        for idx in (i, j):
            if not 0 <= idx < len(series):
                raise ValidationError(
                    f"state index {idx} out of range [0, {len(series) - 1}]"
                )
        engine = shard.engine()
        if client is None:
            client = self.config.client
        if priority is None:
            priority = self.config.priority
        self._count_measure("snd")
        return engine.scheduler.submit(
            series[i],
            series[j],
            transitions=engine.caches.transitions,
            client=client,
            priority=priority,
        )

    # ------------------------------------------------------------------ #
    # Streaming
    # ------------------------------------------------------------------ #

    def watch(
        self,
        graph_name: str,
        *,
        window: int | None = 10,
        threshold: float | None = None,
        jobs=None,
        states: Sequence[NetworkState] | None = None,
    ) -> Iterator:
        """Stream the shard's series (or *states*) through the engine,
        yielding :class:`~repro.snd.engine.StreamUpdate` objects with
        online anomaly scores — the ``watch`` CLI/HTTP surface."""
        from repro.analysis.anomaly import StreamingAnomalyDetector

        shard = self.shard(graph_name)
        engine = shard.engine(jobs=self._engine_jobs(jobs))
        detector = StreamingAnomalyDetector(threshold=threshold)
        source = shard.series if states is None else states
        self._count_measure("snd")
        return engine.stream(source, window=window, detector=detector)

    # ------------------------------------------------------------------ #
    # Corpora
    # ------------------------------------------------------------------ #

    def corpus_build(
        self,
        graph_name: str,
        corpus_name: str,
        *,
        first: int | None = None,
        jobs=None,
    ) -> dict:
        """Build a corpus from the saved series' states and persist it."""
        from repro.snd.engine import Corpus

        shard = self.shard(graph_name)
        engine = shard.engine(jobs=self._engine_jobs(jobs))
        states = list(shard.series)
        if first is not None:
            states = states[:first]
        corpus = Corpus(engine, states)
        with self._open_store() as store:
            corpus.save(store, graph_name, corpus_name)
        with shard._lock:
            shard.corpora[corpus_name] = corpus
        n = len(corpus)
        return {"corpus": corpus_name, "n_states": n, "pairs_solved": n * (n - 1) // 2}

    def corpus_extend(
        self,
        graph_name: str,
        corpus_name: str,
        *,
        take: int = 1,
        jobs=None,
    ) -> dict:
        """Append the next *take* series states to the corpus, solving
        only the new pairs (counter-asserted via the transition cache)."""
        shard = self.shard(graph_name)
        corpus = shard.corpus(corpus_name, jobs=jobs)
        old_n = len(corpus)
        new_states = list(shard.series)[old_n : old_n + take]
        if not new_states:
            return {
                "corpus": corpus_name,
                "old_n": old_n,
                "n_states": old_n,
                "added": 0,
                "solved": 0,
                "series_states": len(shard.series),
            }
        engine = corpus.engine
        before = engine.caches.transitions.fresh
        corpus.extend(new_states)
        solved = engine.caches.transitions.fresh - before
        with self._open_store() as store:
            corpus.save(store, graph_name, corpus_name)
        return {
            "corpus": corpus_name,
            "old_n": old_n,
            "n_states": len(corpus),
            "added": len(new_states),
            "solved": solved,
            "series_states": len(shard.series),
        }

    def corpus_query(
        self,
        graph_name: str,
        corpus_name: str,
        state_index: int,
        *,
        k: int = 3,
        jobs=None,
    ) -> list[tuple[int, float]]:
        """The *k* nearest corpus members to series state *state_index*."""
        shard = self.shard(graph_name)
        if not 0 <= state_index < len(shard.series):
            raise ValidationError(
                f"state index {state_index} out of range "
                f"[0, {len(shard.series) - 1}]"
            )
        corpus = shard.corpus(corpus_name, jobs=jobs)
        return corpus.query(shard.series[state_index], k=k)

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #

    def cache_stats(self, graph_name: str) -> dict | None:
        """The shard's unified-cache counters (the ``--cache-stats``
        surface; ``None`` when no SND instance was used)."""
        return self.shard(graph_name).context.cache_stats()

    def stats(self) -> dict:
        """Service-wide counters: one entry per loaded shard (cache
        hierarchy + scheduler + pool state + persistence counters) — the
        ``stats`` endpoint, and the tree
        :func:`repro.serve.metrics.samples_from_stats` translates into
        Prometheus samples for ``/v1/metrics``."""
        with self._shards_lock:
            shards = dict(self._shards)
        return {
            "store": self.store_path,
            "config": self.config.to_dict(),
            "measures": self.measure_requests(),
            "shards": {name: shard.stats() for name, shard in shards.items()},
        }

    def flush(self) -> int:
        """Spill every shard's transition cache to the store; returns the
        total rows written (the HTTP server calls this periodically, and
        :meth:`close` calls it on the way out)."""
        with self._shards_lock:
            shards = list(self._shards.values())
        return sum(shard.flush_transitions() for shard in shards)

    def close(self) -> None:
        """Flush transition caches, then close every shard engine
        (idempotent, like the engines)."""
        with self._shards_lock:
            shards, self._shards = list(self._shards.values()), {}
        for shard in shards:
            shard.close()

    def __enter__(self) -> "SNDService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
