"""A stdlib-asyncio HTTP front end for :class:`~repro.serve.service.SNDService`.

``repro-snd serve`` binds this server over one experiment store.  It is a
deliberately small HTTP/1.1 implementation (no third-party web framework —
the repo's no-new-dependencies rule) with the shape the workload needs:

* **Blocking work off the event loop** — every service call runs in a
  thread pool via ``run_in_executor``, sized above the default so a burst
  of duplicate requests genuinely runs concurrently and the engine's
  :class:`~repro.snd.scheduler.PairScheduler` gets to coalesce it into
  one solve (serving the burst from one thread would hide the scheduler).
* **Streaming watch** — ``POST /v1/watch`` answers with a chunked NDJSON
  response, one line per :class:`~repro.snd.engine.StreamUpdate`, so
  anomaly scores flow to the client as transitions are solved.
* **Backpressure as 503 / 429** — a saturated scheduler queue
  (:class:`~repro.exceptions.SchedulerSaturatedError`) maps to HTTP 503;
  a client over its per-identity fairness quota
  (:class:`~repro.exceptions.ClientSaturatedError`) maps to HTTP 429, so
  well-behaved clients can tell "the server is full" from "I am being
  rationed".  Validation failures map to 400, unknown names/routes to 404.
* **Observability** — ``GET /v1/metrics`` serves Prometheus text
  exposition (see :mod:`repro.serve.metrics`): live per-route request
  counters and latency histograms plus a snapshot translation of the
  service stats tree (scheduler, caches, solver metric families,
  persistence counters).

API versioning (v1)
-------------------
All routes are canonically mounted under ``/v1/``.  The original
unversioned paths keep working as aliases but mark every response with a
``Deprecation: true`` header; new clients should use ``/v1/...`` only.
Every 4xx/5xx response body is one JSON envelope::

    {"error": {"code": "<machine-readable>", "message": "<human>", "detail": {...}}}

Client identity: requests may carry ``X-Client`` (an opaque identity
string, case preserved) and ``X-Priority`` (``low`` / ``normal`` /
``high``); the distance endpoint threads them into the scheduler's
per-client accounting and fairness quotas.

Routes (canonical form)
-----------------------
``GET  /v1/healthz``          liveness probe
``GET  /v1/stats``            cache + scheduler + pool counters, per shard
``GET  /v1/metrics``          Prometheus text exposition format
``GET  /v1/corpora``          corpora stored for serving
``POST /v1/distance``         ``{"name", "i", "j"}`` → one coalescable pair
``POST /v1/series``           ``{"name", "measure"?, "jobs"?, "window"?}``
``POST /v1/matrix``           ``{"name", "measure"?, "jobs"?}``
``POST /v1/corpus/query``     ``{"name", "corpus", "state", "k"?}``
``POST /v1/watch``            ``{"name", "window"?, "threshold"?}`` (NDJSON)
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, is_dataclass

import numpy as np

from repro.exceptions import (
    ClientSaturatedError,
    ReproError,
    SchedulerSaturatedError,
    ValidationError,
)
from repro.serve.metrics import CONTENT_TYPE as METRICS_CONTENT_TYPE
from repro.serve.metrics import ServeMetrics
from repro.serve.service import SNDService

__all__ = ["HttpServer", "BackgroundServer", "serve_forever"]

#: Executor width: wide enough that duplicate-pair bursts overlap in time
#: (the whole point of scheduler coalescing), bounded so a misbehaving
#: client cannot fork unbounded threads.
DEFAULT_EXECUTOR_WORKERS = 16

#: The one supported API version prefix.
API_PREFIX = "/v1"

_WATCH_END = object()


def _json_safe(value):
    """Recursively convert numpy scalars/arrays and dataclasses so the
    payload survives ``json.dumps``."""
    if is_dataclass(value) and not isinstance(value, type):
        return _json_safe(asdict(value))
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, np.ndarray):
        return _json_safe(value.tolist())
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _update_payload(update) -> dict:
    """One ``watch`` NDJSON line for a :class:`StreamUpdate` (states are
    elided — clients already have the series; scores are the payload)."""
    scored = update.scored
    return _json_safe(
        {
            "index": update.index,
            "distance": update.distance,
            "window_distances": update.window_distances,
            "scored": None
            if scored is None
            else {
                "index": scored.index,
                "distance": scored.distance,
                "normalized": scored.normalized,
                "score": scored.score,
                "threshold": scored.threshold,
                "flagged": scored.flagged,
            },
        }
    )


#: status → default machine-readable error code of the v1 envelope.
_ERROR_CODES = {
    400: "bad_request",
    404: "not_found",
    405: "method_not_allowed",
    429: "client_quota_exceeded",
    500: "internal",
    503: "saturated",
}


def _error_envelope(status: int, message: str, *, code: str | None = None,
                    detail=None) -> dict:
    """The uniform v1 error body: ``{"error": {code, message, detail}}``."""
    return {
        "error": {
            "code": code or _ERROR_CODES.get(status, "error"),
            "message": message,
            "detail": detail,
        }
    }


class _HttpError(Exception):
    def __init__(self, status: int, message: str, *, code: str | None = None,
                 detail=None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.code = code
        self.detail = detail


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpServer:
    """The asyncio server; one instance per :class:`SNDService`."""

    def __init__(
        self,
        service: SNDService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        executor_workers: int = DEFAULT_EXECUTOR_WORKERS,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.metrics = ServeMetrics()
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="snd-serve"
        )
        self._server: asyncio.AbstractServer | None = None
        self._flush_task: asyncio.Task | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        config = getattr(self.service, "config", None)
        if config is not None and config.persist_transitions:
            self._flush_task = asyncio.get_running_loop().create_task(
                self._flush_loop(config.flush_interval)
            )

    async def stop(self) -> None:
        if self._flush_task is not None:
            self._flush_task.cancel()
            try:
                await self._flush_task
            except asyncio.CancelledError:
                pass
            self._flush_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=False, cancel_futures=True)
        # service.close() flushes transition caches before engines go down.
        self.service.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def _flush_loop(self, interval: float) -> None:
        """Periodically spill transition caches to the store so a crash
        loses at most *interval* seconds of solves (``close()`` flushes
        the remainder on clean shutdown)."""
        while True:
            await asyncio.sleep(interval)
            try:
                await self._run(self.service.flush)
            except Exception:  # pragma: no cover - a failed flush must
                pass  # never take down the serving loop; retry next tick

    def _run(self, fn, *args, **kwargs):
        """Run one blocking service call on the executor."""
        loop = asyncio.get_running_loop()
        return loop.run_in_executor(self._executor, lambda: fn(*args, **kwargs))

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                )
                route, extra_headers = self._normalise_path(path)
                status = 200
                started = time.perf_counter()
                try:
                    force_close = await self._dispatch(
                        method, route, headers, body, writer, keep_alive,
                        extra_headers,
                    )
                    if force_close:
                        keep_alive = False
                except _HttpError as exc:
                    status = exc.status
                    self._write_json(
                        writer,
                        exc.status,
                        _error_envelope(
                            exc.status, exc.message, code=exc.code,
                            detail=exc.detail,
                        ),
                        keep_alive,
                        extra_headers,
                    )
                except ClientSaturatedError as exc:
                    status = 429
                    self._write_json(
                        writer, 429, _error_envelope(429, str(exc)), keep_alive,
                        extra_headers,
                    )
                except SchedulerSaturatedError as exc:
                    status = 503
                    self._write_json(
                        writer, 503, _error_envelope(503, str(exc)), keep_alive,
                        extra_headers,
                    )
                except (ValidationError, json.JSONDecodeError) as exc:
                    status = 400
                    self._write_json(
                        writer, 400, _error_envelope(400, str(exc)), keep_alive,
                        extra_headers,
                    )
                except (KeyError, ReproError) as exc:
                    status = 404
                    self._write_json(
                        writer, 404, _error_envelope(404, str(exc)), keep_alive,
                        extra_headers,
                    )
                except Exception as exc:  # pragma: no cover - defensive
                    status = 500
                    self._write_json(
                        writer, 500, _error_envelope(500, str(exc)), keep_alive,
                        extra_headers,
                    )
                self.metrics.observe_request(
                    route, status, time.perf_counter() - started
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:  # pragma: no cover - teardown race
                pass

    @staticmethod
    def _normalise_path(path: str) -> tuple[str, dict[str, str]]:
        """Canonicalise a request path to its unprefixed route.

        ``/v1/...`` strips the version prefix; the historical unversioned
        spelling still resolves but earns a ``Deprecation: true`` response
        header, per the v1 migration contract in ``docs/serving.md``.
        """
        if path == API_PREFIX or path.startswith(API_PREFIX + "/"):
            return path[len(API_PREFIX):] or "/", {}
        return path, {"Deprecation": "true"}

    async def _read_request(self, reader):
        try:
            request_line = await reader.readline()
        except (ConnectionResetError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            # Header *names* are case-insensitive; values keep their case
            # (X-Client carries an opaque identity string).
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _dispatch(
        self, method, path, headers, body, writer, keep_alive, extra_headers
    ) -> bool:
        """Handle one request; returns True when the response format
        forces the connection closed (chunked watch streams)."""
        if method == "GET":
            if path == "/healthz":
                self._write_json(writer, 200, {"ok": True}, keep_alive, extra_headers)
                return False
            if path == "/stats":
                payload = await self._run(self.service.stats)
                self._write_json(
                    writer, 200, _json_safe(payload), keep_alive, extra_headers
                )
                return False
            if path == "/metrics":
                stats = await self._run(self.service.stats)
                text = self.metrics.render(stats)
                self._write_text(
                    writer, 200, text, METRICS_CONTENT_TYPE, keep_alive,
                    extra_headers,
                )
                return False
            if path == "/corpora":
                rows = await self._run(self.service.list_corpora)
                payload = [
                    {"graph": g, "corpus": c, "n_states": n} for g, c, n in rows
                ]
                self._write_json(
                    writer, 200, _json_safe(payload), keep_alive, extra_headers
                )
                return False
            raise _HttpError(404, f"no such route: GET {path}")
        if method != "POST":
            raise _HttpError(405, f"unsupported method {method}")
        params = json.loads(body.decode("utf-8") or "{}")
        if not isinstance(params, dict):
            raise _HttpError(400, "request body must be a JSON object")
        if path == "/distance":
            client = headers.get("x-client") or params.get("client")
            priority = headers.get("x-priority") or params.get("priority")
            value = await self._run(
                self.service.distance_pair,
                self._require(params, "name"),
                int(self._require(params, "i")),
                int(self._require(params, "j")),
                client=client,
                priority=priority,
            )
            self._write_json(
                writer, 200, {"distance": float(value)}, keep_alive, extra_headers
            )
            return False
        if path == "/series":
            values = await self._run(
                self.service.series_distances,
                self._require(params, "name"),
                measure=params.get("measure", "snd"),
                jobs=params.get("jobs"),
                window=params.get("window"),
            )
            self._write_json(
                writer, 200, {"distances": _json_safe(values)}, keep_alive,
                extra_headers,
            )
            return False
        if path == "/matrix":
            matrix = await self._run(
                self.service.matrix,
                self._require(params, "name"),
                measure=params.get("measure", "snd"),
                jobs=params.get("jobs"),
            )
            self._write_json(
                writer, 200, {"matrix": _json_safe(matrix)}, keep_alive,
                extra_headers,
            )
            return False
        if path == "/corpus/query":
            neighbours = await self._run(
                self.service.corpus_query,
                self._require(params, "name"),
                self._require(params, "corpus"),
                int(self._require(params, "state")),
                k=int(params.get("k", 3)),
            )
            payload = [
                {"index": idx, "distance": dist} for idx, dist in neighbours
            ]
            self._write_json(
                writer, 200, {"neighbours": _json_safe(payload)}, keep_alive,
                extra_headers,
            )
            return False
        if path == "/watch":
            await self._stream_watch(params, writer, extra_headers)
            return True  # chunked responses always close
        raise _HttpError(404, f"no such route: POST {path}")

    @staticmethod
    def _require(params: dict, key: str):
        try:
            return params[key]
        except KeyError:
            raise _HttpError(
                400, f"missing required field {key!r}",
                detail={"field": key},
            ) from None

    # ------------------------------------------------------------------ #
    # Watch streaming
    # ------------------------------------------------------------------ #

    async def _stream_watch(self, params: dict, writer, extra_headers) -> None:
        name = self._require(params, "name")
        window = params.get("window", 10)
        threshold = params.get("threshold")
        updates = await self._run(
            self.service.watch, name, window=window, threshold=threshold
        )
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
        )
        for header_name, header_value in (extra_headers or {}).items():
            head += f"{header_name}: {header_value}\r\n"
        head += "Connection: close\r\n\r\n"
        writer.write(head.encode("ascii"))

        def _next():
            # Each next() may solve one SND pair — keep it off the loop.
            return next(updates, _WATCH_END)

        while True:
            update = await self._run(_next)
            if update is _WATCH_END:
                break
            line = json.dumps(_update_payload(update)) + "\n"
            data = line.encode("utf-8")
            writer.write(f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # ------------------------------------------------------------------ #
    # Response writing
    # ------------------------------------------------------------------ #

    @staticmethod
    def _write_payload(
        writer,
        status: int,
        body: bytes,
        content_type: str,
        keep_alive: bool,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        for name, value in (extra_headers or {}).items():
            head += f"{name}: {value}\r\n"
        head += f"Connection: {connection}\r\n\r\n"
        writer.write(head.encode("ascii") + body)

    @classmethod
    def _write_json(
        cls, writer, status: int, payload, keep_alive: bool,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        cls._write_payload(
            writer, status, json.dumps(payload).encode("utf-8"),
            "application/json", keep_alive, extra_headers,
        )

    @classmethod
    def _write_text(
        cls, writer, status: int, text: str, content_type: str,
        keep_alive: bool, extra_headers: dict[str, str] | None = None,
    ) -> None:
        cls._write_payload(
            writer, status, text.encode("utf-8"), content_type, keep_alive,
            extra_headers,
        )


class BackgroundServer:
    """Run an :class:`HttpServer` on a daemon thread — the harness used by
    tests and :mod:`benchmarks.bench_serve` (and handy interactively)::

        with BackgroundServer(SNDService(store)) as server:
            requests.post(f"http://127.0.0.1:{server.port}/v1/distance", ...)
    """

    def __init__(self, service: SNDService, *, host: str = "127.0.0.1", port: int = 0):
        self.server = HttpServer(service, host=host, port=port)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    def start(self) -> "BackgroundServer":
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self.server.start())
            self._started.set()
            self._loop.run_forever()
            # Drain the server teardown once run_forever is stopped: give
            # connection handlers a moment to see EOF and finish, then
            # cancel stragglers (silencing the loop's exception handler —
            # cancellation during writer.wait_closed() otherwise logs).
            self._loop.run_until_complete(self.server.stop())
            pending = [t for t in asyncio.all_tasks(self._loop) if not t.done()]
            if pending:
                self._loop.set_exception_handler(lambda loop, context: None)

                async def _drain() -> None:
                    _done, rest = await asyncio.wait(pending, timeout=1.0)
                    for task in rest:
                        task.cancel()
                    if rest:
                        await asyncio.gather(*rest, return_exceptions=True)

                self._loop.run_until_complete(_drain())
            self._loop.close()

        self._thread = threading.Thread(
            target=run, name="snd-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)
            self._loop = None
            self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


async def _serve_async(server: HttpServer, announce: bool, state: dict) -> None:
    await server.start()
    if announce:
        print(f"repro-snd serve: listening on http://{server.host}:{server.port}")
        print(
            f"# store={server.service.store_path} "
            f"jobs={server.service.jobs} max_pending={server.service.max_pending}",
            flush=True,
        )
    # Process managers stop services with SIGTERM, whose default action
    # would kill the process without flushing the transition cache.
    # Route it through the same cancellation path as SIGINT so both
    # signals get the graceful stop (flush + close).
    loop = asyncio.get_running_loop()
    task = asyncio.current_task()
    try:
        loop.add_signal_handler(signal.SIGTERM, task.cancel)
        sigterm_wired = True
    except (NotImplementedError, RuntimeError):  # pragma: no cover - platform
        sigterm_wired = False
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        # SIGINT: asyncio.Runner cancels the main task.  Swallowing the
        # cancellation lets asyncio.run() return normally, so announce
        # the shutdown here (and remember, to avoid a double message on
        # interpreters that still convert this to KeyboardInterrupt).
        if announce:
            print("repro-snd serve: shutting down", flush=True)
        state["announced_shutdown"] = True
    finally:
        if sigterm_wired:
            loop.remove_signal_handler(signal.SIGTERM)
        await server.stop()


def serve_forever(
    service: SNDService,
    *,
    host: str = "127.0.0.1",
    port: int = 8765,
    announce: bool = True,
) -> int:
    """Blocking entry point behind ``repro-snd serve``."""
    server = HttpServer(service, host=host, port=port)
    state = {"announced_shutdown": False}
    try:
        asyncio.run(_serve_async(server, announce, state))
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        if announce and not state["announced_shutdown"]:
            print("repro-snd serve: shutting down")
    return 0
